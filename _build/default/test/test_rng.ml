module Rng = Geomix_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.int64 a <> Rng.int64 b)

let test_float_range () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_float_mean () =
  let rng = Rng.create ~seed:9 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create ~seed:3 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 10);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_gaussian_moments () =
  let rng = Rng.create ~seed:11 in
  let xs = Rng.gaussian_vector rng 100_000 in
  let mean = Geomix_util.Stats.mean xs in
  let var = Geomix_util.Stats.variance xs in
  Alcotest.(check bool) "mean ~0" true (Float.abs mean < 0.02);
  Alcotest.(check bool) "var ~1" true (Float.abs (var -. 1.) < 0.03)

let test_split_independence () =
  let parent = Rng.create ~seed:5 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  Alcotest.(check bool) "children differ" true (Rng.int64 c1 <> Rng.int64 c2)

let test_copy_snapshots () =
  let a = Rng.create ~seed:21 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:13 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let test_uniform_range () =
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-3.) ~hi:5. in
    Alcotest.(check bool) "in [lo,hi)" true (x >= -3. && x < 5.)
  done

let () =
  Alcotest.run "rng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "int bounds & uniformity" `Quick test_int_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "copy snapshot" `Quick test_copy_snapshots;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
        ] );
    ]
