module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Likelihood = Geomix_geostat.Likelihood
module Mle = Geomix_geostat.Mle
module Mp = Geomix_core.Mp_cholesky
module Rng = Geomix_util.Rng

let locs_z ?(n = 144) ~seed cov =
  let rng = Rng.create ~seed in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n) in
  let z = Field.synthesize ~rng ~cov locs in
  (locs, z)

let test_loglik_exact_matches_naive () =
  (* ℓ(θ) against a direct dense computation of each term. *)
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.1 () in
  let locs, z = locs_z ~n:48 ~seed:1 cov in
  let e = Likelihood.evaluate Likelihood.Exact ~cov ~locs ~z in
  let sigma = Covariance.build_dense cov locs in
  let l = Geomix_linalg.Blas.cholesky sigma in
  let logdet = Geomix_linalg.Blas.log_det_from_chol l in
  Alcotest.(check (float 1e-8)) "log det" logdet e.Likelihood.log_det;
  Alcotest.(check bool) "quad form positive" true (e.Likelihood.quad_form > 0.);
  let n = float_of_int 48 in
  Alcotest.(check (float 1e-8)) "assembled"
    ((-0.5 *. n *. log (2. *. Float.pi)) -. (0.5 *. logdet) -. (0.5 *. e.Likelihood.quad_form))
    e.Likelihood.loglik

let test_loglik_mixed_close_to_exact () =
  let cov = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 () in
  let locs, z = locs_z ~seed:2 cov in
  let exact = Likelihood.loglik Likelihood.Exact ~cov ~locs ~z in
  let tight = Likelihood.loglik (Likelihood.mixed ~u_req:1e-9 ~nb:48 ()) ~cov ~locs ~z in
  let loose = Likelihood.loglik (Likelihood.mixed ~u_req:1e-2 ~nb:48 ()) ~cov ~locs ~z in
  Alcotest.(check bool)
    (Printf.sprintf "1e-9 close (Δ=%g)" (Float.abs (tight -. exact)))
    true
    (Float.abs (tight -. exact) < 1e-3 *. (1. +. Float.abs exact));
  Alcotest.(check bool)
    (Printf.sprintf "1e-2 within reason (Δ=%g)" (Float.abs (loose -. exact)))
    true
    (Float.abs (loose -. exact) < 0.1 *. (1. +. Float.abs exact))

let test_loglik_peaks_near_truth () =
  (* ℓ at the generating parameters beats ℓ at badly wrong parameters. *)
  let truth = Covariance.sqexp ~sigma2:1. ~beta:0.1 () in
  let locs, z = locs_z ~seed:3 truth in
  let ll cov = Likelihood.loglik Likelihood.Exact ~cov ~locs ~z in
  Alcotest.(check bool) "truth beats wrong beta" true
    (ll truth > ll (Covariance.sqexp ~sigma2:1. ~beta:1.5 ()));
  Alcotest.(check bool) "truth beats wrong sigma" true
    (ll truth > ll (Covariance.sqexp ~sigma2:0.05 ~beta:0.1 ()))

let test_loglik_infeasible_is_neg_inf () =
  let cov = Covariance.sqexp ~nugget:0. ~sigma2:1. ~beta:2. () in
  (* β=2 with zero nugget on a dense grid is numerically singular. *)
  let locs, z = locs_z ~n:196 ~seed:4 (Covariance.sqexp ~sigma2:1. ~beta:0.1 ()) in
  let v = Likelihood.loglik Likelihood.Exact ~cov ~locs ~z in
  Alcotest.(check bool) "−∞ or finite, never raises" true
    (v = neg_infinity || Float.is_finite v)

let test_fit_recovers_sqexp () =
  let truth = Covariance.sqexp ~sigma2:1. ~beta:0.1 () in
  let locs, z = locs_z ~n:196 ~seed:5 truth in
  let settings = { Mle.default_settings with max_evals = 150 } in
  let f = Mle.fit ~settings ~engine:Likelihood.Exact ~family:Covariance.Sqexp ~locs ~z () in
  Alcotest.(check bool)
    (Printf.sprintf "σ²=%.3f near 1" f.Mle.theta.(0))
    true
    (f.Mle.theta.(0) > 0.4 && f.Mle.theta.(0) < 2.);
  Alcotest.(check bool)
    (Printf.sprintf "β=%.3f near 0.1" f.Mle.theta.(1))
    true
    (f.Mle.theta.(1) > 0.02 && f.Mle.theta.(1) < 0.4)

let test_fit_mixed_tight_matches_exact () =
  let truth = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 () in
  let locs, z = locs_z ~seed:6 truth in
  let settings = { Mle.default_settings with max_evals = 100 } in
  let fe = Mle.fit ~settings ~engine:Likelihood.Exact ~family:Covariance.Matern ~locs ~z () in
  let fm =
    Mle.fit ~settings
      ~engine:(Likelihood.mixed ~u_req:1e-9 ~nb:48 ())
      ~family:Covariance.Matern ~locs ~z ()
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "param %d agrees (%.4f vs %.4f)" i v fm.Mle.theta.(i))
        true
        (Float.abs (v -. fm.Mle.theta.(i)) < 0.05))
    fe.Mle.theta

let test_fit_starts_at_lower_bounds () =
  Alcotest.(check (array (float 0.))) "start point" [| 0.01; 0.01 |]
    (Mle.start_point Mle.default_settings Covariance.Sqexp);
  Alcotest.(check (array (float 0.))) "matern arity" [| 0.01; 0.01; 0.01 |]
    (Mle.start_point Mle.default_settings Covariance.Matern)

let test_loglik_tlr_engine () =
  (* Smooth field: the TLR engine must match the exact likelihood closely. *)
  let cov = Covariance.matern ~nugget:1e-4 ~sigma2:1. ~beta:0.15 ~nu:1.5 () in
  let locs, z = locs_z ~n:256 ~seed:21 cov in
  let exact = Likelihood.loglik Likelihood.Exact ~cov ~locs ~z in
  let tlr u_req tol =
    Likelihood.loglik (Likelihood.Tlr { tol; nb = 64; u_req }) ~cov ~locs ~z
  in
  let tight = tlr None 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "tight TLR close (Δ=%g)" (Float.abs (tight -. exact)))
    true
    (Float.abs (tight -. exact) < 1e-2 *. (1. +. Float.abs exact));
  let mixed = tlr (Some 1e-6) 1e-6 in
  Alcotest.(check bool) "mixed TLR finite and close" true
    (Float.abs (mixed -. exact) < 0.05 *. (1. +. Float.abs exact))

let test_fit_with_tlr_engine () =
  let truth = Covariance.matern ~nugget:1e-4 ~sigma2:1. ~beta:0.15 ~nu:1.5 () in
  let locs, z = locs_z ~n:196 ~seed:22 truth in
  let settings = { Mle.default_settings with max_evals = 90 } in
  let fe =
    Mle.fit ~settings ~nugget:1e-4 ~engine:Likelihood.Exact ~family:Covariance.Matern
      ~locs ~z ()
  in
  let ft =
    Mle.fit ~settings ~nugget:1e-4
      ~engine:(Likelihood.Tlr { tol = 1e-9; nb = 49; u_req = None })
      ~family:Covariance.Matern ~locs ~z ()
  in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "param %d: %.4f vs %.4f" i v ft.Mle.theta.(i))
        true
        (Float.abs (v -. ft.Mle.theta.(i)) < 0.1))
    fe.Mle.theta

let test_fit_with_bobyqa () =
  let truth = Covariance.sqexp ~sigma2:1. ~beta:0.1 () in
  let locs, z = locs_z ~seed:7 truth in
  let settings = { Mle.default_settings with optimizer = Mle.Bobyqa_lite; max_evals = 150 } in
  let f = Mle.fit ~settings ~engine:Likelihood.Exact ~family:Covariance.Sqexp ~locs ~z () in
  Alcotest.(check bool) "fit improves on start" true
    (f.Mle.loglik
    > Likelihood.loglik Likelihood.Exact
        ~cov:(Covariance.sqexp ~sigma2:0.01 ~beta:0.01 ())
        ~locs ~z)

let test_precision_fractions_reported () =
  (* The loose-accuracy engine needs the larger sqexp nugget (see DESIGN.md:
     perturbations of order u_req·‖Σ‖ must stay below λmin). *)
  let cov = Covariance.sqexp ~nugget:0.02 ~sigma2:1. ~beta:0.03 () in
  let locs, z = locs_z ~n:196 ~seed:8 cov in
  let e = Likelihood.evaluate (Likelihood.mixed ~u_req:1e-4 ~nb:32 ()) ~cov ~locs ~z in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. e.Likelihood.precision_fractions in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1. total;
  Alcotest.(check bool) "mixed precisions actually used" true
    (List.length e.Likelihood.precision_fractions > 1)

let () =
  Alcotest.run "mle"
    [
      ( "likelihood",
        [
          Alcotest.test_case "exact matches naive" `Quick test_loglik_exact_matches_naive;
          Alcotest.test_case "mixed close to exact" `Quick test_loglik_mixed_close_to_exact;
          Alcotest.test_case "peaks near truth" `Quick test_loglik_peaks_near_truth;
          Alcotest.test_case "infeasible handled" `Quick test_loglik_infeasible_is_neg_inf;
          Alcotest.test_case "precision fractions" `Quick test_precision_fractions_reported;
        ] );
      ( "mle",
        [
          Alcotest.test_case "recovers sqexp" `Quick test_fit_recovers_sqexp;
          Alcotest.test_case "mixed 1e-9 = exact" `Quick test_fit_mixed_tight_matches_exact;
          Alcotest.test_case "start point" `Quick test_fit_starts_at_lower_bounds;
          Alcotest.test_case "bobyqa-lite engine" `Quick test_fit_with_bobyqa;
          Alcotest.test_case "tlr likelihood" `Quick test_loglik_tlr_engine;
          Alcotest.test_case "tlr fit = exact fit" `Quick test_fit_with_tlr_engine;
        ] );
    ]
