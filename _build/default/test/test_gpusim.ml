module Gpu = Geomix_gpusim.Gpu_specs
module Machine = Geomix_gpusim.Machine
module Exec_model = Geomix_gpusim.Exec_model
module Device = Geomix_gpusim.Device
module Energy = Geomix_gpusim.Energy
module Trace = Geomix_runtime.Trace
module Fp = Geomix_precision.Fpformat
module Task = Geomix_runtime.Task

let tf = 1e12

let test_table1_values () =
  (* Spot-check the paper's Table I. *)
  Alcotest.(check (float 1.)) "V100 FP64" (7.8 *. tf) (Gpu.peak_flops Gpu.v100 Fp.Fp64);
  Alcotest.(check (float 1.)) "V100 FP16" (125. *. tf) (Gpu.peak_flops Gpu.v100 Fp.Fp16);
  Alcotest.(check (float 1.)) "A100 FP64 tensor" (19.5 *. tf) (Gpu.peak_flops Gpu.a100 Fp.Fp64);
  Alcotest.(check (float 1.)) "A100 TF32" (156. *. tf) (Gpu.peak_flops Gpu.a100 Fp.Tf32);
  Alcotest.(check (float 1.)) "H100 FP16" (756. *. tf) (Gpu.peak_flops Gpu.h100 Fp.Fp16);
  Alcotest.(check (float 1.)) "H100 FP64" (51.2 *. tf) (Gpu.peak_flops Gpu.h100 Fp.Fp64)

let test_supports () =
  Alcotest.(check bool) "V100 no TF32" false (Gpu.supports Gpu.v100 Fp.Tf32);
  Alcotest.(check bool) "V100 fp16 yes" true (Gpu.supports Gpu.v100 Fp.Fp16);
  Alcotest.(check bool) "A100 all" true (Gpu.supports Gpu.a100 Fp.Bf16_32)

let test_fp64_tensor_parity () =
  (* On A100/H100, FP64 (tensor) shares the FP32 peak — the reason MP saves
     less energy there (Section VII-E). *)
  Alcotest.(check bool) "A100" true
    (Gpu.peak_flops Gpu.a100 Fp.Fp64 = Gpu.peak_flops Gpu.a100 Fp.Fp32);
  Alcotest.(check bool) "H100" true
    (Gpu.peak_flops Gpu.h100 Fp.Fp64 = Gpu.peak_flops Gpu.h100 Fp.Fp32);
  Alcotest.(check bool) "V100 differs" true
    (Gpu.peak_flops Gpu.v100 Fp.Fp64 < Gpu.peak_flops Gpu.v100 Fp.Fp32);
  Alcotest.(check bool) "flags" true
    (Gpu.fp64_uses_tensor_cores Gpu.a100 && not (Gpu.fp64_uses_tensor_cores Gpu.v100))

let test_efficiency_bounds () =
  List.iter
    (fun gpu ->
      List.iter
        (fun prec ->
          List.iter
            (fun kind ->
              let e = Gpu.kernel_efficiency gpu kind prec in
              Alcotest.(check bool) "in (0,1]" true (e > 0. && e <= 1.))
            [ Task.Potrf 0; Task.Trsm (1, 0); Task.Syrk (1, 0); Task.Gemm (2, 1, 0) ])
        Fp.all)
    [ Gpu.v100; Gpu.a100; Gpu.h100 ]

let test_busy_power_bounds () =
  List.iter
    (fun gpu ->
      List.iter
        (fun prec ->
          let p = Gpu.busy_power gpu prec in
          Alcotest.(check bool) "idle < p ≤ tdp" true
            (p > gpu.Gpu.idle_power && p <= gpu.Gpu.tdp))
        Fp.all)
    [ Gpu.v100; Gpu.a100; Gpu.h100 ]

let test_table2_tile_move () =
  (* Table II: moving a 2048² FP64 tile over Summit's 50 GB/s NVLink takes
     ≈0.67 ms, halving with each precision step. *)
  let m = Machine.summit () in
  let t64 = Exec_model.tile_move_time m ~nb:2048 ~scalar:Fp.S_fp64 in
  let t32 = Exec_model.tile_move_time m ~nb:2048 ~scalar:Fp.S_fp32 in
  let t16 = Exec_model.tile_move_time m ~nb:2048 ~scalar:Fp.S_fp16 in
  Alcotest.(check bool) (Printf.sprintf "fp64 ≈ 0.67ms (%g)" t64) true
    (t64 > 0.6e-3 && t64 < 0.75e-3);
  Alcotest.(check bool) "halving 64→32" true (Float.abs ((t64 /. t32) -. 2.) < 0.1);
  Alcotest.(check bool) "halving 32→16" true (Float.abs ((t32 /. t16) -. 2.) < 0.1)

let test_table2_gemm_times () =
  (* Table II: 2048³ GEMM on V100 ≈ 2.2 ms FP64, ≈1.1 ms FP32, ≈0.14 ms FP16. *)
  let t prec = Exec_model.gemm_time Gpu.v100 ~prec ~n:2048 () in
  let within x lo hi = x > lo && x < hi in
  Alcotest.(check bool) "fp64" true (within (t Fp.Fp64) 2.0e-3 2.6e-3);
  Alcotest.(check bool) "fp32" true (within (t Fp.Fp32) 1.0e-3 1.4e-3);
  Alcotest.(check bool) "fp16" true (within (t Fp.Fp16) 0.12e-3 0.20e-3)

let test_gemm_conversion_overhead () =
  let base = Exec_model.gemm_time Gpu.v100 ~prec:Fp.Fp16 ~n:2048 () in
  let with_conv =
    Exec_model.gemm_time Gpu.v100 ~prec:Fp.Fp16 ~include_conversion:true ~n:2048 ()
  in
  Alcotest.(check bool) "conversion adds time" true (with_conv > base);
  let f64 = Exec_model.gemm_time Gpu.v100 ~prec:Fp.Fp64 ~n:2048 () in
  let f64c = Exec_model.gemm_time Gpu.v100 ~prec:Fp.Fp64 ~include_conversion:true ~n:2048 () in
  Alcotest.(check (float 0.)) "fp64 needs none" f64 f64c

let test_conversion_time () =
  Alcotest.(check (float 0.)) "same format free" 0.
    (Exec_model.conversion_time Gpu.v100 ~nb:2048 ~from:Fp.S_fp32 ~into:Fp.S_fp32);
  let c = Exec_model.conversion_time Gpu.v100 ~nb:2048 ~from:Fp.S_fp32 ~into:Fp.S_fp16 in
  Alcotest.(check bool) "positive and sub-ms" true (c > 0. && c < 1e-3)

let test_machines () =
  let s = Machine.summit ~nodes:4 () in
  Alcotest.(check int) "summit gpus" 24 (Machine.total_gpus s);
  Alcotest.(check int) "node of gpu 13" 2 (Machine.node_of_gpu s 13);
  Alcotest.(check int) "guyot gpus" 8 (Machine.total_gpus (Machine.guyot ()));
  Alcotest.(check int) "haxane gpus" 1 (Machine.total_gpus (Machine.haxane ()))

let test_max_matrix () =
  let n = Machine.max_matrix_fp64 (Machine.single_gpu Gpu.V100) ~nb:2048 in
  (* The paper uses 61 440 as the largest FP64 matrix on one 16 GB V100. *)
  Alcotest.(check bool) (Printf.sprintf "V100 ≈ 61440 (%d)" n) true
    (n >= 51200 && n <= 65536);
  Alcotest.(check int) "multiple of nb" 0 (n mod 2048)

let test_device_timelines () =
  let d = Device.create ~gpu:Gpu.v100 ~capacity_bytes:1e9 in
  let f1 = Device.busy_compute d ~start:0. ~dur:1. in
  Alcotest.(check (float 0.)) "first" 1. f1;
  (* Requested start in the past is pushed to the stream's free time. *)
  let f2 = Device.busy_compute d ~start:0.5 ~dur:1. in
  Alcotest.(check (float 0.)) "serialised" 2. f2;
  let l1 = Device.busy_link d ~start:0. ~dur:0.25 in
  Alcotest.(check (float 0.)) "link independent" 0.25 l1

let test_device_lru () =
  let d = Device.create ~gpu:Gpu.v100 ~capacity_bytes:100. in
  Alcotest.(check bool) "miss" false (Device.resident d ~key:1);
  ignore (Device.insert d ~key:1 ~bytes:40. ~dirty:true);
  ignore (Device.insert d ~key:2 ~bytes:40. ~dirty:false);
  Alcotest.(check bool) "hit 1" true (Device.resident d ~key:1);
  (* Key 2 is now LRU; inserting 40 more evicts it. *)
  let victims = Device.insert d ~key:3 ~bytes:40. ~dirty:false in
  Alcotest.(check (list (triple int (float 0.) bool))) "evicted 2" [ (2, 40., false) ] victims;
  Alcotest.(check bool) "2 gone" false (Device.resident d ~key:2);
  Alcotest.(check (float 0.)) "used" 80. (Device.used_bytes d)

let test_device_eviction_reports_dirty () =
  let d = Device.create ~gpu:Gpu.v100 ~capacity_bytes:50. in
  ignore (Device.insert d ~key:1 ~bytes:40. ~dirty:true);
  let victims = Device.insert d ~key:2 ~bytes:40. ~dirty:false in
  Alcotest.(check (list (triple int (float 0.) bool))) "dirty victim" [ (1, 40., true) ] victims

let test_device_replace_same_key () =
  let d = Device.create ~gpu:Gpu.v100 ~capacity_bytes:100. in
  ignore (Device.insert d ~key:1 ~bytes:30. ~dirty:false);
  ignore (Device.insert d ~key:1 ~bytes:50. ~dirty:true);
  Alcotest.(check (float 0.)) "replaced bytes" 50. (Device.used_bytes d)

let test_energy_of_busy () =
  let r =
    Energy.of_busy Gpu.v100 ~makespan:10. ~ngpus:2 ~flops:1e12
      ~busy:[ (Fp.Fp64, 5.) ]
  in
  Alcotest.(check bool) "energy positive" true (r.Energy.energy_joules > 0.);
  (* idle: 40 W × 10 s × 2 + (busy_power − idle) × 5 s *)
  let expected = (40. *. 10. *. 2.) +. ((Gpu.busy_power Gpu.v100 Fp.Fp64 -. 40.) *. 5.) in
  Alcotest.(check (float 1e-6)) "value" expected r.Energy.energy_joules;
  Alcotest.(check (float 1e-9)) "avg power" (expected /. 10.) r.Energy.avg_power

let test_energy_of_trace_matches_of_busy () =
  let tr = Trace.create () in
  Trace.add tr { Trace.label = "x"; resource = 0; start = 0.; stop = 5.; tag = "FP64" };
  let a = Energy.of_trace Gpu.v100 tr ~ngpus:2 ~flops:1e12 in
  let b = Energy.of_busy Gpu.v100 ~makespan:5. ~ngpus:2 ~flops:1e12 ~busy:[ (Fp.Fp64, 5.) ] in
  Alcotest.(check (float 1e-9)) "same energy" b.Energy.energy_joules a.Energy.energy_joules

let test_power_series () =
  let tr = Trace.create () in
  Trace.add tr { Trace.label = "x"; resource = 0; start = 0.; stop = 1.; tag = "FP16" };
  let series = Energy.power_series Gpu.v100 tr ~ngpus:1 ~window:0.5 in
  Alcotest.(check int) "windows" 2 (Array.length series);
  Array.iter
    (fun (_, w) ->
      Alcotest.(check bool) "within TDP-ish" true (w > 0. && w <= Gpu.v100.Gpu.tdp +. 1.))
    series

let () =
  Alcotest.run "gpusim"
    [
      ( "specs",
        [
          Alcotest.test_case "table1" `Quick test_table1_values;
          Alcotest.test_case "supports" `Quick test_supports;
          Alcotest.test_case "fp64 tensor parity" `Quick test_fp64_tensor_parity;
          Alcotest.test_case "efficiency bounds" `Quick test_efficiency_bounds;
          Alcotest.test_case "busy power bounds" `Quick test_busy_power_bounds;
        ] );
      ( "exec model",
        [
          Alcotest.test_case "table2 tile moves" `Quick test_table2_tile_move;
          Alcotest.test_case "table2 gemm times" `Quick test_table2_gemm_times;
          Alcotest.test_case "conversion overhead" `Quick test_gemm_conversion_overhead;
          Alcotest.test_case "conversion time" `Quick test_conversion_time;
        ] );
      ( "machines",
        [
          Alcotest.test_case "topologies" `Quick test_machines;
          Alcotest.test_case "max matrix" `Quick test_max_matrix;
        ] );
      ( "device",
        [
          Alcotest.test_case "timelines" `Quick test_device_timelines;
          Alcotest.test_case "lru" `Quick test_device_lru;
          Alcotest.test_case "dirty eviction" `Quick test_device_eviction_reports_dirty;
          Alcotest.test_case "replace same key" `Quick test_device_replace_same_key;
        ] );
      ( "energy",
        [
          Alcotest.test_case "of_busy" `Quick test_energy_of_busy;
          Alcotest.test_case "trace = busy" `Quick test_energy_of_trace_matches_of_busy;
          Alcotest.test_case "power series" `Quick test_power_series;
        ] );
    ]
