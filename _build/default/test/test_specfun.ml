module Gamma = Geomix_specfun.Gamma
module Bessel = Geomix_specfun.Bessel

let releq ?(tol = 1e-10) a b = Float.abs (a -. b) <= tol *. (1. +. Float.abs b)

let check name tol expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.15g got %.15g" name expected actual)
    true (releq ~tol expected actual)

let test_gamma_integers () =
  check "Γ(1)" 1e-12 1. (Gamma.gamma 1.);
  check "Γ(2)" 1e-12 1. (Gamma.gamma 2.);
  check "Γ(5)" 1e-12 24. (Gamma.gamma 5.);
  check "Γ(10)" 1e-11 362880. (Gamma.gamma 10.)

let test_gamma_half () =
  check "Γ(1/2)" 1e-12 (sqrt Float.pi) (Gamma.gamma 0.5);
  check "Γ(3/2)" 1e-12 (sqrt Float.pi /. 2.) (Gamma.gamma 1.5);
  check "Γ(-1/2)" 1e-11 (-2. *. sqrt Float.pi) (Gamma.gamma (-0.5))

let test_gamma_recurrence () =
  List.iter
    (fun x -> check "Γ(x+1)=xΓ(x)" 1e-11 (x *. Gamma.gamma x) (Gamma.gamma (x +. 1.)))
    [ 0.3; 0.77; 1.9; 3.21; 7.5 ]

let test_lgamma_large () =
  (* Stirling check at x=100: lnΓ(100) = 359.1342053695754 *)
  check "lnΓ(100)" 1e-12 359.1342053695754 (Gamma.lgamma 100.)

(* Reference values from Abramowitz & Stegun / SciPy. *)
let test_bessel_k_reference () =
  check "K₀(1)" 1e-10 0.42102443824070834 (Bessel.bessel_k ~nu:0. 1.);
  check "K₁(1)" 1e-10 0.6019072301972346 (Bessel.bessel_k ~nu:1. 1.);
  check "K₀(5)" 1e-10 0.003691098334042594 (Bessel.bessel_k ~nu:0. 5.);
  check "K₂(0.5)" 1e-10 7.550183551240869 (Bessel.bessel_k ~nu:2. 0.5);
  check "K_{0.3}(0.1)" 1e-9 2.8050564750254116 (Bessel.bessel_k ~nu:0.3 0.1)

let test_bessel_i_reference () =
  check "I₀(1)" 1e-10 1.2660658777520082 (Bessel.bessel_i ~nu:0. 1.);
  check "I₁(1)" 1e-10 0.5651591039924851 (Bessel.bessel_i ~nu:1. 1.);
  check "I₀(5)" 1e-9 27.239871823604442 (Bessel.bessel_i ~nu:0. 5.)

let test_bessel_half_closed_form () =
  List.iter
    (fun x ->
      check "K_{1/2} closed form" 1e-12 (Bessel.bessel_k_half x)
        (Bessel.bessel_k ~nu:0.5 x))
    [ 0.05; 0.3; 1.; 2.; 5.; 20. ]

let test_bessel_recurrence () =
  (* K_{ν+1}(x) = K_{ν−1}(x) + (2ν/x)·K_ν(x). *)
  List.iter
    (fun (nu, x) ->
      let k_m = Bessel.bessel_k ~nu:(nu -. 1.) x in
      let k_0 = Bessel.bessel_k ~nu x in
      let k_p = Bessel.bessel_k ~nu:(nu +. 1.) x in
      check
        (Printf.sprintf "recurrence ν=%g x=%g" nu x)
        1e-9
        (k_m +. (2. *. nu /. x *. k_0))
        k_p)
    [ (1., 0.7); (1.3, 2.5); (2., 4.); (1.5, 0.2) ]

let test_bessel_wronskian () =
  (* I_ν(x)·K_{ν+1}(x) + I_{ν+1}(x)·K_ν(x) = 1/x. *)
  List.iter
    (fun (nu, x) ->
      let i0, k0 = Bessel.bessel_ik ~nu x in
      let i1, k1 = Bessel.bessel_ik ~nu:(nu +. 1.) x in
      check (Printf.sprintf "wronskian ν=%g x=%g" nu x) 1e-10 (1. /. x)
        ((i0 *. k1) +. (i1 *. k0)))
    [ (0., 0.5); (0.5, 1.); (0.25, 3.); (1.7, 0.3); (0.9, 8.) ]

let test_bessel_domain () =
  Alcotest.check_raises "x=0 rejected" (Invalid_argument "Bessel.bessel_ik: requires x > 0 and nu >= 0")
    (fun () -> ignore (Bessel.bessel_k ~nu:0.5 0.));
  Alcotest.check_raises "nu<0 rejected" (Invalid_argument "Bessel.bessel_ik: requires x > 0 and nu >= 0")
    (fun () -> ignore (Bessel.bessel_k ~nu:(-1.) 1.))

let test_bessel_k_positive_decreasing () =
  List.iter
    (fun nu ->
      let prev = ref infinity in
      List.iter
        (fun x ->
          let k = Bessel.bessel_k ~nu x in
          Alcotest.(check bool) "positive" true (k > 0.);
          Alcotest.(check bool) "decreasing in x" true (k < !prev);
          prev := k)
        [ 0.1; 0.5; 1.; 2.; 4.; 8. ])
    [ 0.1; 0.5; 1.; 1.9 ]

let prop_wronskian =
  QCheck.Test.make ~name:"wronskian holds over random (ν,x)" ~count:300
    QCheck.(pair (float_range 0. 3.) (float_range 0.05 30.))
    (fun (nu, x) ->
      let i0, k0 = Bessel.bessel_ik ~nu x in
      let i1, k1 = Bessel.bessel_ik ~nu:(nu +. 1.) x in
      releq ~tol:1e-8 (1. /. x) ((i0 *. k1) +. (i1 *. k0)))

let prop_k_decreasing_in_x =
  QCheck.Test.make ~name:"K_ν decreasing in x" ~count:300
    QCheck.(triple (float_range 0. 2.5) (float_range 0.05 20.) (float_range 0.05 20.))
    (fun (nu, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      lo = hi || Bessel.bessel_k ~nu lo >= Bessel.bessel_k ~nu hi)

let () =
  Alcotest.run "specfun"
    [
      ( "gamma",
        [
          Alcotest.test_case "integers" `Quick test_gamma_integers;
          Alcotest.test_case "half integers" `Quick test_gamma_half;
          Alcotest.test_case "recurrence" `Quick test_gamma_recurrence;
          Alcotest.test_case "lgamma large" `Quick test_lgamma_large;
        ] );
      ( "bessel",
        [
          Alcotest.test_case "K reference values" `Quick test_bessel_k_reference;
          Alcotest.test_case "I reference values" `Quick test_bessel_i_reference;
          Alcotest.test_case "K half closed form" `Quick test_bessel_half_closed_form;
          Alcotest.test_case "recurrence" `Quick test_bessel_recurrence;
          Alcotest.test_case "wronskian" `Quick test_bessel_wronskian;
          Alcotest.test_case "domain errors" `Quick test_bessel_domain;
          Alcotest.test_case "positive decreasing" `Quick test_bessel_k_positive_decreasing;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_wronskian; prop_k_decreasing_in_x ] );
    ]
