(* Quickstart: generate a synthetic Gaussian field, assign tile precisions
   with the norm rule, factorize its covariance in adaptive mixed
   precision, and compare accuracy and modelled data motion against FP64.

   Run with:  dune exec examples/quickstart.exe *)

module Rng = Geomix_util.Rng
module Fp = Geomix_precision.Fpformat
module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Mp = Geomix_core.Mp_cholesky
module Sim = Geomix_core.Sim_cholesky
module Machine = Geomix_gpusim.Machine
module Gpu = Geomix_gpusim.Gpu_specs
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field

let () =
  (* 1. Synthetic spatial data: 400 sites in the unit square, Matérn
        covariance with rough smoothness (the paper's ν = 0.5). *)
  let rng = Rng.create ~seed:42 in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n:400) in
  let cov = Covariance.matern ~sigma2:1. ~beta:0.1 ~nu:0.5 () in
  let z = Field.synthesize ~rng ~cov locs in
  Printf.printf "Generated %d observations; z(0) = %.4f\n\n" (Array.length z) z.(0);

  (* 2. Tile the covariance matrix and assign kernel precisions with the
        Higham–Mary norm rule at an application accuracy of 1e-6. *)
  let a = Covariance.build_tiled cov locs ~nb:50 in
  let pmap = Pm.of_tiled ~u_req:1e-6 a in
  Printf.printf "Tile precision map (u_req = 1e-6):\n%s\n" (Pm.render pmap);

  (* 3. The automated conversion strategy (Algorithm 2): which broadcasts
        can down-convert at the sender. *)
  let cmap = Cm.compute pmap in
  Printf.printf "Communication map: %.1f%% of broadcasting tiles use STC\n\n"
    (100. *. Cm.stc_fraction cmap);

  (* 4. Factorize in mixed precision and check the result. *)
  let dense = Covariance.build_dense cov locs in
  let l = Tiled.copy a in
  Mp.factorize ~pmap l;
  let lm = Tiled.to_dense l in
  Mat.zero_upper lm;
  Printf.printf "Mixed-precision Cholesky residual: %.3e (FP64 reference: ~1e-16)\n"
    (Check.cholesky_residual ~a:dense ~l:lm);

  (* 5. Use the factor: log-determinant and a linear solve. *)
  let y = Mp.solve_lower l z in
  let quad = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y in
  Printf.printf "log|Sigma| = %.4f,   z' Sigma^-1 z = %.4f\n\n" (Mp.log_det l) quad;

  (* 6. What would this cost on a real GPU?  Same precision map, simulated
        V100, both conversion strategies. *)
  let machine = Machine.single_gpu Gpu.V100 in
  let sim strategy =
    Sim.run ~options:{ Sim.default_options with strategy } ~machine ~pmap ~nb:2048 ()
  in
  let stc = sim Sim.Stc_auto and ttc = sim Sim.Ttc_always in
  let fp64 =
    Sim.run ~machine ~pmap:(Pm.uniform ~nt:(Pm.nt pmap) Fp.Fp64) ~nb:2048 ()
  in
  Printf.printf "Simulated on one V100 at tile size 2048 (matrix order %d):\n" stc.Sim.n;
  Printf.printf "  FP64:              %6.2f s  (%5.1f Tflop/s)\n" fp64.Sim.makespan
    fp64.Sim.tflops;
  Printf.printf "  adaptive MP (TTC): %6.2f s  (%5.1f Tflop/s)\n" ttc.Sim.makespan
    ttc.Sim.tflops;
  Printf.printf "  adaptive MP (STC): %6.2f s  (%5.1f Tflop/s), %d conversions vs %d\n"
    stc.Sim.makespan stc.Sim.tflops stc.Sim.conversions ttc.Sim.conversions;
  Printf.printf "  speedup vs FP64: %.2fx;  STC vs TTC: %.2fx\n"
    (fp64.Sim.makespan /. stc.Sim.makespan)
    (ttc.Sim.makespan /. stc.Sim.makespan)
