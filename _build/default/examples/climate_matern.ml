(* Climate-style workload: fit a 2D Matérn model to synthetic temperature
   anomalies by maximum likelihood at two accuracy levels, then krige the
   fitted model onto held-out sites — the full modeling-and-prediction
   loop the paper's introduction motivates.

   Run with:  dune exec examples/climate_matern.exe *)

module Rng = Geomix_util.Rng
module Stats = Geomix_util.Stats
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Likelihood = Geomix_geostat.Likelihood
module Mle = Geomix_geostat.Mle
module Prediction = Geomix_geostat.Prediction

let () =
  (* A "temperature anomaly" field: smooth-ish Matérn, moderate range. *)
  let rng = Rng.create ~seed:7 in
  let all = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n:384) in
  let truth = Covariance.matern ~sigma2:1. ~beta:0.12 ~nu:0.8 () in
  let z_all = Field.synthesize ~rng ~cov:truth all in
  (* Hold out every 7th site for validation. *)
  let obs_idx = ref [] and new_idx = ref [] in
  for i = Locations.count all - 1 downto 0 do
    if i mod 7 = 3 then new_idx := i :: !new_idx else obs_idx := i :: !obs_idx
  done;
  let obs_locs = Locations.subset all !obs_idx in
  let new_locs = Locations.subset all !new_idx in
  let z_obs = Array.of_list (List.map (fun i -> z_all.(i)) !obs_idx) in
  let z_new = Array.of_list (List.map (fun i -> z_all.(i)) !new_idx) in
  Printf.printf "Observations: %d sites; held-out: %d sites\n" (Array.length z_obs)
    (Array.length z_new);

  (* Fit by MLE at two accuracy levels. *)
  let fit_with label engine =
    let t0 = Unix.gettimeofday () in
    let f =
      Mle.fit
        ~settings:{ Mle.default_settings with max_evals = 150 }
        ~engine ~family:Covariance.Matern ~locs:obs_locs ~z:z_obs ()
    in
    Printf.printf "\n%s fit (%.1fs, %d evaluations):\n" label
      (Unix.gettimeofday () -. t0)
      f.Mle.evals;
    Printf.printf
      "  sigma^2 = %.3f (true 1.0)   beta = %.3f (true 0.12)   nu = %.3f (true 0.8)\n"
      f.Mle.theta.(0) f.Mle.theta.(1) f.Mle.theta.(2);
    Printf.printf "  log-likelihood = %.2f\n" f.Mle.loglik;
    f
  in
  let f_exact = fit_with "Exact FP64" Likelihood.Exact in
  let f_mixed =
    fit_with "Mixed-precision (u_req = 1e-9)" (Likelihood.mixed ~u_req:1e-9 ~nb:48 ())
  in

  (* Predict at the held-out sites with each fitted model. *)
  let evaluate label cov =
    let p = Prediction.predict ~cov ~obs_locs ~z:z_obs ~new_locs in
    let mse = Prediction.mse ~predicted:p.Prediction.mean ~truth:z_new in
    let mean_sd = Stats.mean (Array.map sqrt p.Prediction.variance) in
    Printf.printf "  %-28s prediction MSE %.4f; mean predictive sd %.4f\n" label mse mean_sd
  in
  Printf.printf "\nKriging the %d held-out sites:\n" (Array.length z_new);
  evaluate "exact-fit model:" f_exact.Mle.cov;
  evaluate "mixed-precision-fit model:" f_mixed.Mle.cov;
  evaluate "true parameters:" truth;
  Printf.printf
    "\nThe mixed-precision fit predicts like the exact fit — the paper's\n\
     operational-accuracy requirement, met while the factorization ran mostly\n\
     in reduced precision.\n"
