(* Capacity planning: how many Summit nodes does a target geospatial
   problem need, and what does each configuration cost in time and energy?
   Sweeps node counts × matrix sizes on the simulated machine — the kind of
   operational question the library's hardware model answers without
   touching the real cluster.

   Run with:  dune exec examples/cluster_planner.exe *)

module Fp = Geomix_precision.Fpformat
module Table = Geomix_util.Table
module Pm = Geomix_core.Precision_map
module Sim = Geomix_core.Sim_cholesky
module Machine = Geomix_gpusim.Machine
module Gpu = Geomix_gpusim.Gpu_specs
module Energy = Geomix_gpusim.Energy

let nb = 2048

let () =
  (* The workload: a 2D squared-exponential campaign at u_req = 1e-4,
     approximated by its banded precision structure. *)
  let pmap_for ntiles =
    Pm.of_element_fn ~u_req:1e-4 ~n:(ntiles * nb) ~nb (fun i j ->
      (if i = j then 1. else 0.) +. exp (-2.0e-3 *. float_of_int (abs (i - j))))
  in
  Printf.printf
    "Planning a mixed-precision geospatial campaign on simulated Summit nodes\n\
     (adaptive maps at u_req = 1e-4, STC conversion, tile size %d)\n\n"
    nb;
  let sizes = [ 96; 144; 192 ] in
  let node_counts = [ 1; 2; 4; 8 ] in
  let headers =
    "N \\ nodes"
    :: List.map (fun nodes -> Printf.sprintf "%d (%d GPUs)" nodes (6 * nodes)) node_counts
  in
  let rows =
    List.map
      (fun ntiles ->
        let pmap = pmap_for ntiles in
        string_of_int (ntiles * nb)
        :: List.map
             (fun nodes ->
               let machine = Machine.summit ~nodes () in
               let r = Sim.run ~machine ~pmap ~nb () in
               Printf.sprintf "%.0fs / %.0f kJ" r.Sim.makespan
                 (r.Sim.energy.Energy.energy_joules /. 1e3))
             node_counts)
      sizes
  in
  Table.print ~align:(List.map (fun _ -> Table.Right) headers) ~headers rows;
  (* Advice line: cheapest configuration meeting a deadline. *)
  let deadline = 120. in
  Printf.printf "\nCheapest configuration finishing N=%d under %.0f s: " (192 * nb) deadline;
  let best =
    List.filter_map
      (fun nodes ->
        let machine = Machine.summit ~nodes () in
        let r = Sim.run ~machine ~pmap:(pmap_for 192) ~nb () in
        if r.Sim.makespan <= deadline then
          Some (nodes, r.Sim.energy.Energy.energy_joules)
        else None)
      node_counts
  in
  match best with
  | [] -> Printf.printf "none of the tested configurations.\n"
  | first :: rest ->
    let nodes, joules =
      List.fold_left
        (fun ((_, bj) as b) ((_, j) as r) -> if j < bj then r else b)
        first rest
    in
    Printf.printf "%d node(s), %.0f kJ.\n" nodes (joules /. 1e3)
