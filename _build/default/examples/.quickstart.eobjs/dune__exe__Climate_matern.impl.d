examples/climate_matern.ml: Array Geomix_geostat Geomix_util List Printf Unix
