examples/soil3d.mli:
