examples/cluster_planner.ml: Geomix_core Geomix_gpusim Geomix_precision Geomix_util List Printf
