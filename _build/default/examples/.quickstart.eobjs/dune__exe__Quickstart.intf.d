examples/quickstart.mli:
