examples/cluster_planner.mli:
