examples/tlr_compression.mli:
