examples/climate_matern.mli:
