examples/tlr_compression.ml: Geomix_core Geomix_geostat Geomix_linalg Geomix_tile Geomix_tlr Geomix_util List Printf
