(* 3D soil-moisture-style workload (the paper's 3D-sqexp application):
   build the adaptive precision map of a 3D squared-exponential covariance,
   inspect its composition, and compare simulated runtime and energy on the
   three GPU generations against FP64 — the Fig 7 / Fig 10 pipeline as a
   library user would drive it.

   Run with:  dune exec examples/soil3d.exe *)

module Rng = Geomix_util.Rng
module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Sim = Geomix_core.Sim_cholesky
module Machine = Geomix_gpusim.Machine
module Gpu = Geomix_gpusim.Gpu_specs
module Energy = Geomix_gpusim.Energy
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance

let nb = 2048

let () =
  let n = 65536 in
  let rng = Rng.create ~seed:99 in
  let locs = Locations.morton_sort (Locations.jittered_grid_3d ~rng ~n) in
  let cov = Covariance.sqexp ~sigma2:1. ~beta:0.05 () in
  Printf.printf "3D squared-exponential covariance over %d sites (matrix order %d)\n\n" n n;

  (* The sampled-norm estimator scales the precision map to any order. *)
  let pmap =
    Pm.of_element_fn ~u_req:1e-8 ~n ~nb (fun i j -> Covariance.element cov locs i j)
  in
  Printf.printf "Tile precision composition at u_req = 1e-8 (the paper's 3D accuracy):\n";
  List.iter
    (fun (p, f) -> Printf.printf "  %-8s %5.1f%%\n" (Fp.name p) (100. *. f))
    (Pm.fractions pmap);
  Printf.printf "(3D fields keep most tiles in FP64/FP32 — the costliest of the three apps)\n\n";

  let fp64 = Pm.uniform ~nt:(Pm.nt pmap) Fp.Fp64 in
  Printf.printf "%-14s %12s %12s %14s %14s %10s\n" "GPU" "FP64 (s)" "MP (s)" "FP64 (J)" "MP (J)"
    "J saved";
  List.iter
    (fun gen ->
      let machine = Machine.single_gpu gen in
      let run pmap = Sim.run ~machine ~pmap ~nb () in
      let r64 = run fp64 and rmp = run pmap in
      Printf.printf "%-14s %12.2f %12.2f %14.0f %14.0f %9.1f%%\n"
        (Gpu.of_generation gen).Gpu.name r64.Sim.makespan rmp.Sim.makespan
        r64.Sim.energy.Energy.energy_joules rmp.Sim.energy.Energy.energy_joules
        (100.
        *. (1. -. (rmp.Sim.energy.Energy.energy_joules /. r64.Sim.energy.Energy.energy_joules))))
    [ Gpu.V100; Gpu.A100; Gpu.H100 ];
  Printf.printf
    "\nAs in the paper's Fig 10, the savings shrink on A100/H100, whose FP64 tensor\n\
     cores already run at the FP32 rate.\n"
