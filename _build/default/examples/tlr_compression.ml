(* Tile low-rank (TLR) compression — the paper's future-work extension
   (Section VIII) implemented: compress a smooth covariance into low-rank
   tiles, factorize it with the rank-aware Cholesky, optionally rounding
   the factors with the adaptive precision map, and compare accuracy and
   memory against the dense mixed-precision path.

   Run with:  dune exec examples/tlr_compression.exe *)

module Rng = Geomix_util.Rng
module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Pm = Geomix_core.Precision_map
module Tlr = Geomix_tlr.Tlr
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance

let () =
  let n = 512 and nb = 64 in
  let rng = Rng.create ~seed:123 in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n) in
  (* A smooth field — the data-sparse regime where TLR pays off. *)
  let cov = Covariance.matern ~nugget:1e-4 ~sigma2:1. ~beta:0.15 ~nu:1.5 () in
  let dense = Covariance.build_dense cov locs in
  let tiled = Covariance.build_tiled cov locs ~nb in
  Printf.printf "Matérn (ν=1.5) covariance, order %d, tiles %dx%d of %d\n\n" n
    (Tiled.nt tiled) (Tiled.nt tiled) nb;

  Printf.printf "%-12s %-10s %-10s %-10s %-12s %s\n" "tol" "LR tiles" "mean rank"
    "memory" "residual" "(of dense)";
  List.iter
    (fun tol ->
      let tlr = Tlr.compress ~tol tiled in
      let stats =
        Printf.sprintf "%-10s %-10.1f %-10s"
          (Printf.sprintf "%.0f%%" (100. *. Tlr.low_rank_fraction tlr))
          (Tlr.mean_rank tlr)
          (Printf.sprintf "%.0f%%" (100. *. Tlr.compression_ratio tlr))
      in
      Tlr.cholesky tlr;
      let l = Tlr.to_dense tlr in
      Mat.zero_upper l;
      Printf.printf "%-12.0e %s %-12.2e\n" tol stats
        (Check.cholesky_residual ~a:dense ~l))
    [ 1e-10; 1e-8; 1e-6; 1e-4 ];

  (* Mixed-precision TLR: factors rounded per the adaptive precision map. *)
  let pmap = Pm.of_tiled ~u_req:1e-6 tiled in
  let tlr = Tlr.compress ~precision:pmap ~tol:1e-6 tiled in
  Tlr.cholesky tlr;
  let l = Tlr.to_dense tlr in
  Mat.zero_upper l;
  Printf.printf
    "\nMixed-precision TLR (u_req 1e-6 map + tol 1e-6): residual %.2e, memory %.0f%%\n"
    (Check.cholesky_residual ~a:dense ~l)
    (100. *. Tlr.compression_ratio tlr);
  Printf.printf
    "Rank truncation and precision reduction compose: the accuracy class is set\n\
     by the looser of the two knobs, the storage savings multiply.\n"
