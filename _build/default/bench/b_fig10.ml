(* Fig 10: power consumption and energy of the FP64 Cholesky vs the
   adaptive mixed-precision approach for the three applications, on one
   GPU of each generation.  Matrix sizes follow the paper's rule: the
   largest FP64 matrix that fits on the V100; host-memory-capped 122 880
   on A100/H100 (here via the same sizing rule). *)

open Common
module Energy = Geomix_gpusim.Energy

let run (scale : scale) =
  section "fig10" "Power and energy: FP64 vs adaptive mixed precision";
  List.iter
    (fun gen ->
      let machine = Machine.single_gpu gen in
      let gpu = Gpu.of_generation gen in
      let ntiles =
        let cap = Machine.max_matrix_fp64 machine ~nb / nb in
        if scale.full then cap else Stdlib.min cap 30
      in
      let n = ntiles * nb in
      Printf.printf "\n  --- %s, N = %d ---\n" gpu.Gpu.name n;
      let report label r =
        Printf.printf "    %-12s time %8.2fs  energy %10.0f J  avg %6.0f W  %8.2f Gflops/W\n"
          label r.Sim.makespan r.Sim.energy.Energy.energy_joules
          r.Sim.energy.Energy.avg_power r.Sim.energy.Energy.gflops_per_watt
      in
      let r64 = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:ntiles Fp.Fp64) in
      report "FP64" r64;
      List.iter
        (fun app ->
          let pmap = app_precision_map app ~n in
          let r = run_sim ~strategy:Sim.Stc_auto ~machine pmap in
          report app.app_name r;
          Printf.printf "      energy saving vs FP64: %.1f%%\n"
            (100. *. (1. -. (r.Sim.energy.Energy.energy_joules /. r64.Sim.energy.Energy.energy_joules))))
        applications;
      (* Power-vs-time series for the FP64 run (the nvidia-smi style plot). *)
      let rt =
        run_sim ~collect_trace:true ~strategy:Sim.Stc_auto ~machine
          (Pm.uniform ~nt:(Stdlib.min ntiles 24) Fp.Fp64)
      in
      match rt.Sim.trace with
      | None -> ()
      | Some tr ->
        let series = Energy.power_series gpu tr ~ngpus:1 ~window:(rt.Sim.makespan /. 16.) in
        Printf.printf "    FP64 power trace (W, 16 windows, TDP %.0f):" gpu.Gpu.tdp;
        Array.iter (fun (_, w) -> Printf.printf " %.0f" w) series;
        print_newline ())
    generations;
  paper "MP saves most on V100; less on A100/H100 (FP64 uses tensor cores there); 3D-sqexp saves least"
