(* Reproduction harness: one runner per table/figure of the paper's
   evaluation plus the ablations.  `dune exec bench/main.exe` runs all of
   them at laptop scale; `--full` switches to paper-scale parameters;
   `--only id1,id2` selects a subset.  The experiment index lives in
   DESIGN.md; measured-vs-paper comparisons are recorded in
   EXPERIMENTS.md. *)

let experiments : (string * string * (Common.scale -> unit)) list =
  [
    ("table1", "Table I: GPU peak performance", B_table1.run);
    ("fig1", "Fig 1: GEMM accuracy & performance", B_fig1.run);
    ("table2", "Table II: tile move / GEMM times on V100", B_table2.run);
    ("fig2_4", "Figs 2 & 4: precision / storage / communication maps", B_fig2_4.run);
    ("fig5", "Fig 5: 2D Monte-Carlo MLE boxplots", B_fig5.run);
    ("fig6", "Fig 6: 3D Monte-Carlo MLE boxplots", B_fig6.run);
    ("fig7", "Fig 7: precision composition per application", B_fig7.run);
    ("fig8", "Fig 8: STC vs TTC on one GPU", B_fig8.run);
    ("fig9", "Fig 9: H100 occupancy", B_fig9.run);
    ("fig10", "Fig 10: power & energy", B_fig10.run);
    ("fig11", "Fig 11: single-node multi-GPU", B_fig11.run);
    ("fig12", "Fig 12: Summit scalability", B_fig12.run);
    ("ablations", "Ablations: STC accuracy, rule sweep, BF16 chain", B_ablation.run);
    ("kernels", "Bechamel kernel micro-benchmarks", B_kernels.run);
  ]

let usage () =
  print_endline "usage: main.exe [--full] [--only id1,id2,...] [--list]";
  print_endline "experiments:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-10s %s\n" id descr) experiments

let () =
  let full = ref false in
  let only = ref None in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
      full := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := Some (String.split_on_char ',' ids);
      parse rest
    | ("--list" | "--help" | "-h") :: _ ->
      usage ();
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      usage ();
      exit 2
  in
  parse (List.tl args);
  let scale = { Common.full = !full } in
  let selected =
    match !only with
    | None -> experiments
    | Some ids ->
      List.iter
        (fun id ->
          if not (List.exists (fun (i, _, _) -> i = id) experiments) then begin
            Printf.eprintf "unknown experiment %S\n" id;
            usage ();
            exit 2
          end)
        ids;
      List.filter (fun (id, _, _) -> List.mem id ids) experiments
  in
  Printf.printf
    "GeoMix reproduction harness — %s scale\n\
     Paper: Reducing Data Motion and Energy Consumption of Geospatial Modeling\n\
     Applications Using Automated Precision Conversion (CLUSTER 2023)\n"
    (if !full then "paper (--full)" else "reduced (default)");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (_, _, run) ->
      let t = Unix.gettimeofday () in
      run scale;
      Printf.printf "  [%.1fs]\n%!" (Unix.gettimeofday () -. t))
    selected;
  Printf.printf "\nAll selected experiments completed in %.1fs.\n" (Unix.gettimeofday () -. t0)
