(* Wall-clock micro-benchmarks of the real (host-executed) kernels via
   Bechamel: the reference FP64 tile kernels, their precision-emulated
   variants, the norm-rule map construction, and Algorithm 2 itself —
   whose cost the paper reports as negligible (<0.1 s). *)

open Common
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Emul = Geomix_linalg.Blas_emul
module Check = Geomix_linalg.Check
module Cm = Geomix_core.Comm_map
open Bechamel
open Toolkit

let make_gemm_inputs n =
  let rng = Rng.create ~seed:3 in
  let a = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
  let b = Mat.init ~rows:n ~cols:n (fun _ _ -> Rng.gaussian rng) in
  let c = Mat.create ~rows:n ~cols:n in
  (a, b, c)

let tests =
  let n = 96 in
  let a, b, c = make_gemm_inputs n in
  let spd =
    let rng = Rng.create ~seed:4 in
    Check.spd_random ~rng ~n
  in
  let decay_pmap u =
    Pm.of_element_fn ~u_req:u ~n:(200 * nb) ~nb (fun i j ->
      exp (-2.0e-3 *. float_of_int (abs (i - j))))
  in
  let pmap200 = decay_pmap 1e-6 in
  [
    Test.make ~name:"gemm_fp64_96"
      (Staged.stage (fun () -> Blas.gemm_nt ~alpha:(-1.) a b ~beta:1. c));
    Test.make ~name:"gemm_emul_fp16_boundary_96"
      (Staged.stage (fun () ->
         Emul.gemm_nt ~fidelity:Emul.Boundary ~prec:Fp.Fp16 ~alpha:(-1.) a b ~beta:1. c));
    Test.make ~name:"gemm_emul_fp16_perop_96"
      (Staged.stage (fun () ->
         Emul.gemm_nt ~fidelity:Emul.Per_op ~prec:Fp.Fp16 ~alpha:(-1.) a b ~beta:1. c));
    Test.make ~name:"potrf_fp64_96"
      (Staged.stage (fun () ->
         let l = Mat.copy spd in
         Blas.potrf_lower l));
    Test.make ~name:"round_fp16_tile_96"
      (Staged.stage (fun () -> ignore (Mat.rounded Fp.S_fp16 a)));
    Test.make ~name:"algorithm2_comm_map_nt200"
      (Staged.stage (fun () -> ignore (Cm.compute pmap200)));
    Test.make ~name:"precision_map_sampled_nt50"
      (Staged.stage (fun () ->
         ignore
           (Pm.of_element_fn ~u_req:1e-6 ~n:(50 * nb) ~nb (fun i j ->
              exp (-2.0e-3 *. float_of_int (abs (i - j)))))));
  ]

let run (_ : scale) =
  section "kernels" "Bechamel wall-clock micro-benchmarks (real host kernels)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:(Some 10) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-34s %s per run\n" name (Table.fmt_time (est /. 1e9))
          | _ -> Printf.printf "  %-34s (no estimate)\n" name)
        results)
    tests;
  paper "Algorithm 2 (comm map) at paper scale runs well under 0.1 s — 'relatively negligible'"
