(* Table II: time to move one tile/matrix to the GPU and to execute a GEMM
   on it, per precision, on one Summit V100 — straight from the calibrated
   cost model (the paper's own numbers follow from Table I peaks and the
   50 GB/s NVLink host link). *)

open Common
module Exec_model = Geomix_gpusim.Exec_model

let sizes = [ 2048; 4096; 6144; 8192; 10240 ]

let run (_ : scale) =
  section "table2" "Time measurement on V100 (milliseconds)";
  let machine = Machine.summit () in
  let gpu = Gpu.v100 in
  let move scalar n =
    Printf.sprintf "%.2f" (1e3 *. Exec_model.tile_move_time machine ~nb:n ~scalar)
  in
  let exec prec n =
    Printf.sprintf "%.2f" (1e3 *. Exec_model.gemm_time gpu ~prec ~n ())
  in
  Table.print
    ~align:(Table.Left :: List.map (fun _ -> Table.Right) sizes)
    ~headers:("Operation" :: List.map string_of_int sizes)
    [
      "Move one tile/matrix in FP64" :: List.map (move Fp.S_fp64) sizes;
      "Move one tile/matrix in FP32" :: List.map (move Fp.S_fp32) sizes;
      "Move one tile/matrix in FP16" :: List.map (move Fp.S_fp16) sizes;
      "Execute GEMM in FP64" :: List.map (exec Fp.Fp64) sizes;
      "Execute GEMM in FP32" :: List.map (exec Fp.Fp32) sizes;
      "Execute GEMM in FP16" :: List.map (exec Fp.Fp16) sizes;
    ];
  paper "row 1: 0.67/2.68/6.04/10.74/16.78 ms; GEMM FP64: 2.2/17.6/59.5/141/275 ms";
  note "data movement can dominate: FP16 GEMM on 2048 costs less than moving the tile in FP64"
