(* Fig 1: accuracy and performance of the GEMM benchmark per precision on
   V100 / A100 / H100.

   Accuracy is measured for real: the per-operation emulated GEMM against
   the FP64 result (sizes scaled down — accuracy depends on n only through
   a slow √n factor).  Performance comes from the calibrated device model,
   with and without the datatype-conversion overhead the paper accounts. *)

open Common
module Emul = Geomix_linalg.Blas_emul
module Exec_model = Geomix_gpusim.Exec_model

let precisions = [ Fp.Fp64; Fp.Fp32; Fp.Tf32; Fp.Fp16_32; Fp.Bf16_32; Fp.Fp16 ]

let accuracy_table (scale : scale) =
  let sizes = if scale.full then [ 64; 128; 256; 512 ] else [ 64; 128; 256 ] in
  let rng = Rng.create ~seed:1 in
  Printf.printf "\n  GEMM accuracy: relative Frobenius error vs FP64 (emulated arithmetic)\n";
  Table.print
    ~align:(Table.Left :: List.map (fun _ -> Table.Right) sizes)
    ~headers:("Precision" :: List.map (fun n -> Printf.sprintf "n=%d" n) sizes)
    (List.map
       (fun prec ->
         Fp.name prec
         :: List.map
              (fun n ->
                Printf.sprintf "%.2e" (Emul.gemm_accuracy ~prec ~n ~rng))
              sizes)
       precisions);
  paper "FP32 ~1e-7; TF32 ≈ FP16_32 ≈ 1e-5..1e-4 band; FP16 ~1e-3 (Fig 1a-c)"

let performance_table (scale : scale) =
  let sizes =
    if scale.full then [ 2048; 4096; 8192; 16384; 22528 ] else [ 2048; 4096; 8192 ]
  in
  List.iter
    (fun gen ->
      let gpu = Gpu.of_generation gen in
      Printf.printf "\n  Modelled GEMM Tflop/s on %s (with conversion | without)\n"
        gpu.Gpu.name;
      Table.print
        ~align:(Table.Left :: List.map (fun _ -> Table.Right) sizes)
        ~headers:("Precision" :: List.map (fun n -> Printf.sprintf "n=%d" n) sizes)
        (List.filter_map
           (fun prec ->
             if not (Gpu.supports gpu prec) then None
             else
               Some
                 (Fp.name prec
                 :: List.map
                      (fun n ->
                        let flops = Geomix_precision.Flops.gemm_full ~m:n ~n ~k:n in
                        let t_conv =
                          Exec_model.gemm_time gpu ~prec ~include_conversion:true ~n ()
                        in
                        let t_raw = Exec_model.gemm_time gpu ~prec ~n () in
                        Printf.sprintf "%.1f | %.1f" (flops /. t_conv /. 1e12)
                          (flops /. t_raw /. 1e12))
                      sizes))
           precisions))
    generations;
  paper "near-theoretical peak for each precision once conversion cost is excluded (Fig 1d-f)"

let run scale =
  section "fig1" "GEMM benchmark: accuracy and performance per precision";
  accuracy_table scale;
  performance_table scale
