(* Fig 9: GPU occupancy over time on the H100 for the STC runs of Fig 8c,
   from the simulated execution trace. *)

open Common
module Trace = Geomix_runtime.Trace

let run (scale : scale) =
  section "fig9" "GPU occupancy on one H100 (simulated trace)";
  let machine = Machine.single_gpu Gpu.H100 in
  let ntiles = if scale.full then 55 else 40 in
  List.iter
    (fun (name, pmap) ->
      let r = run_sim ~collect_trace:true ~strategy:Sim.Stc_auto ~machine pmap in
      match r.Sim.trace with
      | None -> ()
      | Some tr ->
        let occ = Trace.occupancy_series tr ~resources:1 ~window:(r.Sim.makespan /. 24.) in
        let avg = Trace.utilisation tr ~resources:1 in
        Printf.printf "\n  %-14s (N=%d, %.2fs)  mean occupancy %.0f%%\n  " name (ntiles * nb)
          r.Sim.makespan (100. *. avg);
        Array.iter
          (fun (_, o) ->
            let bar = int_of_float (o *. 10.) in
            print_char
              (match bar with
              | b when b >= 10 -> '#'
              | 9 | 8 -> '%'
              | 7 | 6 -> '+'
              | 5 | 4 -> '-'
              | _ -> '.'))
          occ;
        Printf.printf "   (24 windows, #=100%% +=70%% .=low)\n")
    (fig8_configs ntiles);
  paper "100%% occupancy for FP64/FP32 (transfers fully overlapped); >80%% for the mixed configs"
