(* Fig 5: Monte-Carlo parameter-estimation boxplots for 2D synthetic
   datasets — squared exponential and Matérn, weak/strong correlation,
   rough/smooth fields, under exact / 1e-9 / 1e-4 accuracies.

   Scaled down from the paper's 100 replicas of 40 000 sites (see
   DESIGN.md); the squared-exponential configurations carry a 0.02 nugget
   in generation and model so the loose-accuracy factorizations remain
   positive definite at this reduced n. *)

open Common
open B_mc
module Covariance = Geomix_geostat.Covariance

let configs ~mc_nb ~full =
  let acc2d = engines ~mc_nb [ 1e-9; 1e-4 ] in
  let sqexp beta label =
    {
      label;
      truth = Covariance.sqexp ~nugget:0.02 ~sigma2:1. ~beta ();
      family = Covariance.Sqexp;
      dims = 2;
      accuracies = acc2d;
    }
  in
  let matern beta nu label =
    {
      label;
      truth = Covariance.matern ~sigma2:1. ~beta ~nu ();
      family = Covariance.Matern;
      dims = 2;
      accuracies = acc2d;
    }
  in
  let base =
    [
      sqexp 0.03 "2D-sqexp, weak correlation (beta=0.03)";
      sqexp 0.3 "2D-sqexp, strong correlation (beta=0.3)";
      matern 0.03 0.5 "2D-Matern, weak+rough (beta=0.03, nu=0.5)";
      matern 0.3 1.0 "2D-Matern, strong+smooth (beta=0.3, nu=1)";
    ]
  in
  if full then
    base
    @ [
        matern 0.3 0.5 "2D-Matern, strong+rough (beta=0.3, nu=0.5)";
        matern 0.03 1.0 "2D-Matern, weak+smooth (beta=0.03, nu=1)";
      ]
  else base

let run (scale : scale) =
  section "fig5" "Monte-Carlo MLE boxplots, 2D datasets (sqexp & Matern)";
  let n = if scale.full then 400 else 169 in
  let replicas = if scale.full then 25 else 5 in
  let max_evals = if scale.full then 240 else 120 in
  let mc_nb = if scale.full then 100 else 64 in
  note "reduced scale: n=%d, %d replicas (paper: 40000 sites, 100 replicas); --full raises both" n
    replicas;
  List.iter (run_config ~n ~replicas ~max_evals) (configs ~mc_nb ~full:scale.full);
  paper "1e-9 indistinguishable from exact; 1e-4 still acceptable for sqexp, degraded for Matern"
