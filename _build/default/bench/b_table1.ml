(* Table I: theoretical peak performance of the three GPU generations. *)

open Common

let rows =
  [
    ("FP64", Fp.Fp64, false);
    ("FP64 Tensor", Fp.Fp64, true);
    ("FP32", Fp.Fp32, false);
    ("TF32 Tensor", Fp.Tf32, false);
    ("FP16 Tensor", Fp.Fp16, false);
    ("BF16 Tensor", Fp.Bf16_32, false);
  ]

let cell gen (label, prec, tensor_row) =
  let gpu = Gpu.of_generation gen in
  ignore label;
  if tensor_row then
    if Gpu.fp64_uses_tensor_cores gpu then
      Printf.sprintf "%.1f" (Gpu.peak_flops gpu prec /. 1e12)
    else "-"
  else if not (Gpu.supports gpu prec) then "-"
  else if prec = Fp.Fp64 && Gpu.fp64_uses_tensor_cores gpu then
    (* The scalar FP64 row on tensor-core parts lists the vector-unit rate. *)
    Printf.sprintf "%.1f" (match gen with Gpu.A100 -> 9.7 | _ -> 25.6)
  else Printf.sprintf "%.1f" (Gpu.peak_flops gpu prec /. 1e12)

let run (_ : scale) =
  section "table1" "Peak performance of Nvidia GPUs (Tflop/s)";
  Table.print
    ~align:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~headers:[ "Precision"; "V100 (NVLink)"; "A100 (SXM)"; "H100 (PCIe)" ]
    (List.map
       (fun ((label, _, _) as row) ->
         label :: List.map (fun gen -> cell gen row) generations)
       rows);
  paper "FP64 7.8/9.7/25.6, FP16 Tensor 125/312/756 (Table I)"
