(* Figs 2 and 4: the tile-level kernel-precision map, the storage map it
   induces, and Algorithm 2's communication-precision map with its STC/TTC
   classification, on a small synthetic example. *)

open Common
module Cm = Geomix_core.Comm_map

let run (_ : scale) =
  section "fig2_4" "Precision maps: kernel execution, storage, communication (STC/TTC)";
  let n = 16 * 256 and small_nb = 256 in
  let element i j = exp (-4.0e-3 *. float_of_int (abs (i - j))) in
  let pmap =
    Pm.of_element_fn ~u_req:1e-4 ~n ~nb:small_nb (fun i j ->
      if i = j then 1. +. element i j else element i j)
  in
  Printf.printf "\n  Fig 2a — kernel precision per tile:\n%s" (Pm.render pmap);
  Printf.printf "\n  Fig 2b — storage precision per tile (FP16-class tiles stored FP32):\n";
  let nt = Pm.nt pmap in
  for i = 0 to nt - 1 do
    Printf.printf "  ";
    for j = 0 to nt - 1 do
      if j > i then print_string ". "
      else
        print_string
          (match Pm.storage pmap i j with
          | Fp.S_fp64 -> "6 "
          | Fp.S_fp32 -> "3 "
          | _ -> "? ")
    done;
    print_newline ()
  done;
  let cmap = Cm.compute pmap in
  Printf.printf "\n  Fig 4b — communication precision and STC tiles:\n%s" (Cm.render cmap);
  paper "diagonal FP64; banded FP32/FP16_32/FP16 off-diagonal; STC on tiles whose successors all consume less";
  (* The two extreme configurations of Section VII-D. *)
  let extreme = Pm.two_level ~nt:8 ~off_diag:Fp.Fp16 in
  let cm = Cm.compute extreme in
  Printf.printf "\n  FP64/FP16 extreme: %.0f%% of broadcasting tiles use STC (paper: all)\n"
    (100. *. Cm.stc_fraction cm)
