(* Shared infrastructure of the reproduction harness. *)

module Fp = Geomix_precision.Fpformat
module Table = Geomix_util.Table
module Rng = Geomix_util.Rng
module Gpu = Geomix_gpusim.Gpu_specs
module Machine = Geomix_gpusim.Machine
module Pm = Geomix_core.Precision_map
module Sim = Geomix_core.Sim_cholesky

type scale = { full : bool }

let nb = 2048
(* The paper's empirically-optimal tile size (Section VII-A). *)

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================\n%!"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n%!" s) fmt

let paper fmt = Printf.ksprintf (fun s -> Printf.printf "  paper: %s\n%!" s) fmt

let generations = [ Gpu.V100; Gpu.A100; Gpu.H100 ]

(* The four precision configurations of Fig 8. *)
let fig8_configs ntiles =
  [
    ("FP64", Pm.uniform ~nt:ntiles Fp.Fp64);
    ("FP32", Pm.uniform ~nt:ntiles Fp.Fp32);
    ("FP64/FP16_32", Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16_32);
    ("FP64/FP16", Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16);
  ]

let run_sim ?(collect_trace = false) ~strategy ~machine pmap =
  Sim.run
    ~options:{ Sim.default_options with strategy; collect_trace }
    ~machine ~pmap ~nb ()

let tflops_str r = Printf.sprintf "%.1f" r.Sim.tflops

(* The three applications of the evaluation and their required accuracies
   (Section VII-C): the covariance element function over Morton-ordered
   synthetic sites, scaled to any matrix order. *)
type application = {
  app_name : string;
  dims : int;
  u_req : float;
  cov_of : Geomix_geostat.Locations.t -> int -> int -> float;
}

(* Correlation ranges calibrated so the tile-precision composition at the
   operating accuracies reproduces Fig 7's percentages (see EXPERIMENTS.md). *)
let app_2d_sqexp =
  let cov = Geomix_geostat.Covariance.sqexp ~sigma2:1. ~beta:0.1 () in
  {
    app_name = "2D-sqexp";
    dims = 2;
    u_req = 1e-4;
    cov_of = (fun locs -> Geomix_geostat.Covariance.element cov locs);
  }

let app_2d_matern =
  let cov = Geomix_geostat.Covariance.matern ~sigma2:1. ~beta:0.03 ~nu:0.5 () in
  {
    app_name = "2D-Matern";
    dims = 2;
    u_req = 1e-9;
    cov_of = (fun locs -> Geomix_geostat.Covariance.element cov locs);
  }

let app_3d_sqexp =
  let cov = Geomix_geostat.Covariance.sqexp ~sigma2:1. ~beta:0.05 () in
  {
    app_name = "3D-sqexp";
    dims = 3;
    u_req = 1e-8;
    cov_of = (fun locs -> Geomix_geostat.Covariance.element cov locs);
  }

let applications = [ app_2d_sqexp; app_2d_matern; app_3d_sqexp ]

(* Sampled-norm precision map of an application at matrix order n — the
   route that scales to the paper's 409 600-order maps. *)
let app_precision_map app ~n =
  let rng = Rng.create ~seed:4242 in
  let locs =
    if app.dims = 2 then Geomix_geostat.Locations.jittered_grid_2d ~rng ~n
    else Geomix_geostat.Locations.jittered_grid_3d ~rng ~n
  in
  let locs = Geomix_geostat.Locations.morton_sort locs in
  Pm.of_element_fn ~u_req:app.u_req ~n ~nb (app.cov_of locs)
