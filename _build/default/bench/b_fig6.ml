(* Fig 6: Monte-Carlo parameter-estimation boxplots for 3D synthetic
   datasets (squared exponential, weak and strong correlation) under
   exact / 1e-8 / 1e-4 accuracies. *)

open Common
open B_mc
module Covariance = Geomix_geostat.Covariance

let run (scale : scale) =
  section "fig6" "Monte-Carlo MLE boxplots, 3D datasets (sqexp)";
  let n = if scale.full then 512 else 216 in
  let replicas = if scale.full then 25 else 5 in
  let max_evals = if scale.full then 240 else 120 in
  let mc_nb = if scale.full then 100 else 64 in
  let acc3d = engines ~mc_nb [ 1e-8; 1e-4 ] in
  let config beta label =
    {
      label;
      truth = Covariance.sqexp ~nugget:0.02 ~sigma2:1. ~beta ();
      family = Covariance.Sqexp;
      dims = 3;
      accuracies = acc3d;
    }
  in
  note "reduced scale: n=%d, %d replicas; --full raises both" n replicas;
  List.iter
    (run_config ~n ~replicas ~max_evals)
    [
      config 0.03 "3D-sqexp, weak correlation (beta=0.03)";
      config 0.3 "3D-sqexp, strong correlation (beta=0.3)";
    ];
  paper "1e-8 yields estimates highly close to the exact solution (Fig 6)"
