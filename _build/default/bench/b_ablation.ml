(* Ablations beyond the paper's own experiments:
   - ablation_stc: the numerical cost of STC's extra down-conversion
     (the paper only measures its speed benefit);
   - ablation_rule: sweeping the norm-rule accuracy u_req and watching
     residual, precision mix and simulated time trade off;
   - ablation_bf16: admitting BF16_32 into the chain, which the paper
     declined because its performance matches FP16_32 on these parts. *)

open Common
module Mat = Geomix_linalg.Mat
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Mp = Geomix_core.Mp_cholesky
module Covariance = Geomix_geostat.Covariance
module Locations = Geomix_geostat.Locations

let test_problem ~n ~small_nb =
  let rng = Rng.create ~seed:77 in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n) in
  let cov = Covariance.sqexp ~nugget:0.02 ~sigma2:1. ~beta:0.05 () in
  let dense = Covariance.build_dense cov locs in
  let tiled = Covariance.build_tiled cov locs ~nb:small_nb in
  (dense, tiled)

let residual_of ~options ~pmap ~dense tiled =
  let a = Tiled.copy tiled in
  Mp.factorize ~options ~pmap a;
  let l = Tiled.to_dense a in
  Mat.zero_upper l;
  Check.cholesky_residual ~a:dense ~l

let ablation_stc (scale : scale) =
  section "ablation_stc" "Numerical accuracy cost of STC vs TTC (not measured in the paper)";
  let n = if scale.full then 512 else 256 in
  let dense, tiled = test_problem ~n ~small_nb:32 in
  Printf.printf "  %-26s %-14s %-14s %s\n" "configuration" "TTC residual" "STC residual" "ratio";
  let compare_strategies label pmap =
    let r_ttc =
      residual_of ~options:{ Mp.default_options with strategy = Mp.Always_ttc } ~pmap
        ~dense tiled
    in
    let r_stc = residual_of ~options:Mp.default_options ~pmap ~dense tiled in
    Printf.printf "  %-26s %-14.3e %-14.3e %.2f\n" label r_ttc r_stc (r_stc /. r_ttc)
  in
  List.iter
    (fun u ->
      compare_strategies (Printf.sprintf "adaptive u_req=%.0e" u) (Pm.of_tiled ~u_req:u tiled))
    [ 1e-9; 1e-6; 1e-4 ];
  (* The extreme all-STC configurations, where FP16 data really is shipped
     to the FP64 SYRKs. *)
  let ntl = Tiled.nt tiled in
  compare_strategies "FP64/FP16_32 (all STC)" (Pm.two_level ~nt:ntl ~off_diag:Fp.Fp16_32);
  compare_strategies "FP64/FP16 (all STC)" (Pm.two_level ~nt:ntl ~off_diag:Fp.Fp16);
  note "adaptive maps: STC loses nothing (down-casts only where consumers round anyway);";
  note "extreme maps: bounded extra error from FP16 broadcasts into the FP64 SYRKs"

let ablation_rule (scale : scale) =
  section "ablation_rule" "Norm-rule threshold sweep: accuracy vs speed trade-off";
  let n = if scale.full then 512 else 256 in
  let dense, tiled = test_problem ~n ~small_nb:32 in
  let machine = Machine.single_gpu Gpu.V100 in
  Printf.printf "  %-10s %-12s %-28s %s\n" "u_req" "residual" "precision mix (64/32/h/16)" "sim time (N=61440)";
  List.iter
    (fun u ->
      let pmap = Pm.of_tiled ~u_req:u tiled in
      let r = residual_of ~options:Mp.default_options ~pmap ~dense tiled in
      let frac p =
        match List.assoc_opt p (Pm.fractions pmap) with Some f -> 100. *. f | None -> 0.
      in
      (* A like-structured decaying matrix at simulator scale. *)
      let sim_pmap =
        Pm.of_element_fn ~u_req:u ~n:(30 * nb) ~nb (fun i j ->
          (if i = j then 1. else 0.) +. exp (-4.0e-3 *. float_of_int (abs (i - j))))
      in
      let sim = run_sim ~strategy:Sim.Stc_auto ~machine sim_pmap in
      Printf.printf "  %-10.0e %-12.3e %4.0f /%3.0f /%3.0f /%3.0f %%          %.2fs\n" u r
        (frac Fp.Fp64) (frac Fp.Fp32) (frac Fp.Fp16_32) (frac Fp.Fp16) sim.Sim.makespan)
    [ 1e-12; 1e-9; 1e-6; 1e-4; 1e-2 ]

let ablation_bf16 (scale : scale) =
  section "ablation_bf16" "Admitting BF16_32 into the precision chain";
  let n = if scale.full then 512 else 256 in
  let dense, tiled = test_problem ~n ~small_nb:32 in
  let chain_default = Fp.framework_chain in
  let chain_bf16 = [ Fp.Fp64; Fp.Fp32; Fp.Bf16_32; Fp.Fp16_32; Fp.Fp16 ] in
  List.iter
    (fun (label, chain) ->
      let pmap = Pm.of_tiled ~chain ~u_req:1e-6 tiled in
      let r = residual_of ~options:Mp.default_options ~pmap ~dense tiled in
      Printf.printf "  %-18s residual %.3e  mix:" label r;
      List.iter
        (fun (p, f) -> Printf.printf " %s %.0f%%" (Fp.name p) (100. *. f))
        (Pm.fractions pmap);
      print_newline ())
    [ ("default chain", chain_default); ("with BF16_32", chain_bf16) ];
  note "BF16_32 tiles appear but perform identically to FP16_32 on these GPUs — the paper's reason to omit it"

let ablation_tile_size (_ : scale) =
  section "ablation_nb" "Tile-size sweep (the paper fixes nb = 2048 empirically)";
  let machine = Machine.single_gpu Gpu.V100 in
  let n_target = 61440 in
  Printf.printf "  %-8s %-8s %-12s %s\n" "nb" "NT" "FP64 time" "FP64/FP16 time";
  List.iter
    (fun tile ->
      let ntiles = Stdlib.max 2 (n_target / tile) in
      let t pmap =
        (Sim.run ~machine ~pmap ~nb:tile ()).Sim.makespan
      in
      Printf.printf "  %-8d %-8d %-12.2f %.2f\n" tile ntiles
        (t (Pm.uniform ~nt:ntiles Fp.Fp64))
        (t (Pm.two_level ~nt:ntiles ~off_diag:Fp.Fp16)))
    [ 512; 1024; 2048; 4096 ];
  note "small tiles lose kernel efficiency to POTRF/TRSM overheads; big tiles lose parallelism"

let ablation_refinement (scale : scale) =
  section "ablation_ir"
    "Iterative refinement on low-precision factors (extension; cf. related work [33])";
  let n = if scale.full then 512 else 256 in
  let dense, tiled = test_problem ~n ~small_nb:32 in
  let b = Array.init n (fun i -> sin (0.17 *. float_of_int i)) in
  Printf.printf "  %-16s %-14s %-14s %s\n" "factor" "direct resid" "refined resid" "sweeps";
  List.iter
    (fun (label, pmap) ->
      let f = Tiled.copy tiled in
      Mp.factorize ~pmap f;
      let direct = Mp.solve_lower_trans f (Mp.solve_lower f b) in
      let dres = Geomix_linalg.Check.solve_residual ~a:dense ~x:direct ~b in
      let r = Geomix_core.Refine.solve ~a:tiled ~factor:f ~b () in
      let rres = Geomix_linalg.Check.solve_residual ~a:dense ~x:r.Geomix_core.Refine.x ~b in
      Printf.printf "  %-16s %-14.3e %-14.3e %d\n" label dres rres
        r.Geomix_core.Refine.iterations)
    [
      ("FP64", Pm.uniform ~nt:(Tiled.nt tiled) Fp.Fp64);
      ("adaptive 1e-4", Pm.of_tiled ~u_req:1e-4 tiled);
      ("FP64/FP16_32", Pm.two_level ~nt:(Tiled.nt tiled) ~off_diag:Fp.Fp16_32);
      ("FP64/FP16", Pm.two_level ~nt:(Tiled.nt tiled) ~off_diag:Fp.Fp16);
    ];
  note "a few FP64 refinement sweeps recover direct-solver accuracy from reduced-precision factors"

let ablation_tlr (scale : scale) =
  section "ablation_tlr"
    "Tile low-rank + mixed precision (the paper's future work, Section VIII)";
  let n = if scale.full then 768 else 384 in
  let small_nb = 64 in
  let rng = Rng.create ~seed:88 in
  let locs =
    Geomix_geostat.Locations.morton_sort (Geomix_geostat.Locations.jittered_grid_2d ~rng ~n)
  in
  let cov = Covariance.matern ~nugget:1e-4 ~sigma2:1. ~beta:0.15 ~nu:1.5 () in
  let dense = Covariance.build_dense cov locs in
  let tiled = Covariance.build_tiled cov locs ~nb:small_nb in
  let pmap = Pm.of_tiled ~u_req:1e-6 tiled in
  Printf.printf "  %-26s %-10s %-10s %-10s %s\n" "configuration" "floats" "bytes"
    "residual" "LR tiles";
  let report label tlr =
    let mem = Geomix_tlr.Tlr.compression_ratio tlr in
    let memb = Geomix_tlr.Tlr.compression_ratio_bytes tlr in
    let frac = Geomix_tlr.Tlr.low_rank_fraction tlr in
    Geomix_tlr.Tlr.cholesky tlr;
    let l = Geomix_tlr.Tlr.to_dense tlr in
    Mat.zero_upper l;
    Printf.printf "  %-26s %-10s %-10s %-10.2e %.0f%%\n" label
      (Printf.sprintf "%.0f%%" (100. *. mem))
      (Printf.sprintf "%.0f%%" (100. *. memb))
      (Geomix_linalg.Check.cholesky_residual ~a:dense ~l)
      (100. *. frac)
  in
  report "TLR tol=1e-8" (Geomix_tlr.Tlr.compress ~tol:1e-8 tiled);
  report "TLR tol=1e-6" (Geomix_tlr.Tlr.compress ~tol:1e-6 tiled);
  report "TLR tol=1e-6 + precision" (Geomix_tlr.Tlr.compress ~precision:pmap ~tol:1e-6 tiled);
  report "TLR tol=1e-4" (Geomix_tlr.Tlr.compress ~tol:1e-4 tiled);
  (* Dense mixed-precision reference. *)
  let dense_mp =
    let a = Geomix_tile.Tiled.copy tiled in
    Mp.factorize ~pmap a;
    let l = Geomix_tile.Tiled.to_dense a in
    Mat.zero_upper l;
    Geomix_linalg.Check.cholesky_residual ~a:dense ~l
  in
  Printf.printf "  %-26s %-10s %-10s %-10.2e\n" "dense MP (u_req 1e-6)" "100%" "-" dense_mp;
  note "rank truncation and precision reduction compose; accuracy follows the looser knob"

let run scale =
  ablation_stc scale;
  ablation_rule scale;
  ablation_bf16 scale;
  ablation_tile_size scale;
  ablation_refinement scale;
  ablation_tlr scale
