bench/b_kernels.ml: Analyze Bechamel Benchmark Common Fp Geomix_core Geomix_linalg Hashtbl Instance List Measure Pm Printf Rng Staged Table Test Time Toolkit
