bench/b_fig8.ml: Common Float Fp Geomix_precision Gpu List Machine Pm Printf Sim Table
