bench/common.ml: Geomix_core Geomix_geostat Geomix_gpusim Geomix_precision Geomix_util Printf
