bench/main.ml: Array B_ablation B_fig1 B_fig10 B_fig11 B_fig12 B_fig2_4 B_fig5 B_fig6 B_fig7 B_fig8 B_fig9 B_kernels B_table1 B_table2 Common List Printf String Sys Unix
