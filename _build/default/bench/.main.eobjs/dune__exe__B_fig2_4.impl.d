bench/b_fig2_4.ml: Common Fp Geomix_core Pm Printf
