bench/b_fig5.ml: B_mc Common Geomix_geostat List
