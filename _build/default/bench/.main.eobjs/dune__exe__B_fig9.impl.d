bench/b_fig9.ml: Array Common Geomix_runtime Gpu List Machine Printf Sim
