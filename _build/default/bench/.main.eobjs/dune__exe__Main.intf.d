bench/main.mli:
