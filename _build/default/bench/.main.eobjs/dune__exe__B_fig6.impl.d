bench/b_fig6.ml: B_mc Common Geomix_geostat List
