bench/b_fig10.ml: Array Common Fp Geomix_gpusim Gpu List Machine Pm Printf Sim Stdlib
