bench/b_mc.ml: Array Common Format Geomix_geostat Geomix_util List Printf Rng String Unix
