bench/b_fig12.ml: Common Float Fp Gpu List Machine Pm Printf Sim Table
