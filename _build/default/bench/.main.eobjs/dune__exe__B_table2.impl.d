bench/b_table2.ml: Common Fp Geomix_gpusim Gpu List Machine Printf Table
