bench/b_ablation.ml: Array Common Fp Geomix_core Geomix_geostat Geomix_linalg Geomix_tile Geomix_tlr Gpu List Machine Pm Printf Rng Sim Stdlib
