bench/b_table1.ml: Common Fp Gpu List Printf Table
