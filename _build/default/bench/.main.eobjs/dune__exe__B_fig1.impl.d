bench/b_fig1.ml: Common Fp Geomix_gpusim Geomix_linalg Geomix_precision Gpu List Printf Rng Table
