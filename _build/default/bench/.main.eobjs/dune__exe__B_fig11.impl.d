bench/b_fig11.ml: Common Fp Gpu List Machine Pm Printf Sim Stdlib Table
