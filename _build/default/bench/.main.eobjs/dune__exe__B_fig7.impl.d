bench/b_fig7.ml: Common Fp List Pm Printf Unix
