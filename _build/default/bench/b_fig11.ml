(* Fig 11: one full node — 6×V100 (Summit) and 8×A100 (Guyot) — precision
   configurations under both conversion strategies, plus the 1-GPU→node
   scaling factor. *)

open Common

let node_table (scale : scale) machine =
  let gpu = machine.Machine.gpu in
  let g = Machine.total_gpus machine in
  let fp64_limit = Machine.max_matrix_fp64 machine ~nb / nb in
  Printf.printf "\n  --- %s: %d x %s ---\n" machine.Machine.name g gpu.Gpu.name;
  let sizes =
    let step = if scale.full then 8 else 16 in
    let rec go acc k = if k > fp64_limit then List.rev acc else go (k :: acc) (k + step) in
    go [] 16
  in
  let headers = [ "N"; "FP64"; "FP32"; "64/16 TTC"; "64/16 STC"; "STC/TTC" ] in
  Table.print
    ~align:(List.map (fun _ -> Table.Right) headers)
    ~headers
    (List.map
       (fun ntiles ->
         let cfg name = List.assoc name (fig8_configs ntiles) in
         let r64 = run_sim ~strategy:Sim.Ttc_always ~machine (cfg "FP64") in
         let r32 = run_sim ~strategy:Sim.Ttc_always ~machine (cfg "FP32") in
         let ttc = run_sim ~strategy:Sim.Ttc_always ~machine (cfg "FP64/FP16") in
         let stc = run_sim ~strategy:Sim.Stc_auto ~machine (cfg "FP64/FP16") in
         [
           string_of_int (ntiles * nb);
           tflops_str r64;
           tflops_str r32;
           tflops_str ttc;
           tflops_str stc;
           Printf.sprintf "%.2fx" (ttc.Sim.makespan /. stc.Sim.makespan);
         ])
       sizes);
  (* Scaling from one GPU to the node at a common size. *)
  let ntiles = Stdlib.min fp64_limit 24 in
  let one = run_sim ~strategy:Sim.Stc_auto ~machine:(Machine.single_gpu gpu.Gpu.generation)
      (Pm.uniform ~nt:ntiles Fp.Fp64) in
  let node = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:ntiles Fp.Fp64) in
  Printf.printf "  1 GPU -> %d GPUs speedup at N=%d: %.2fx (linear = %d)\n" g (ntiles * nb)
    (one.Sim.makespan /. node.Sim.makespan)
    g;
  (* Efficiency summary at ~3/4 of the memory limit, clear of LRU
     thrashing at the very edge. *)
  let nt_eff = Stdlib.max 16 (3 * fp64_limit / 4) in
  let r64 = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:nt_eff Fp.Fp64) in
  let r16 =
    run_sim ~strategy:Sim.Stc_auto ~machine (Pm.two_level ~nt:nt_eff ~off_diag:Fp.Fp16)
  in
  Printf.printf "  FP64 node efficiency %.1f%% (N=%d); FP64/FP16 vs FP64: %.1fx\n"
    (100. *. Sim.efficiency r64 ~peak_flops_per_gpu:(Gpu.peak_flops gpu Fp.Fp64))
    (nt_eff * nb)
    (r64.Sim.makespan /. r16.Sim.makespan)

let run (scale : scale) =
  section "fig11" "Single-node multi-GPU performance (Summit node & Guyot)";
  node_table scale (Machine.summit ());
  node_table scale (Machine.guyot ());
  paper ">80%% FP64/FP32 efficiency; STC/TTC up to 1.66x; 9.75x (Summit) / 10.9x (Guyot) FP64->FP64/FP16"
