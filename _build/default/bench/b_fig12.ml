(* Fig 12: performance on the (simulated) Summit supercomputer —
   (a) weak scalability with memory-proportional sizing,
   (b) strong scalability on a fixed matrix,
   (c) the mixed-precision effect on 64 nodes / 384 GPUs. *)

open Common

let weak (scale : scale) =
  Printf.printf "\n  (a) Weak scalability (tiles per GPU held constant)\n";
  let nodes_list = if scale.full then [ 1; 2; 4; 8; 16; 32; 64 ] else [ 1; 2; 4; 8; 16 ] in
  let headers = [ "nodes"; "GPUs"; "N"; "time (s)"; "aggregate Tflop/s"; "per-GPU" ] in
  Table.print
    ~align:(List.map (fun _ -> Table.Right) headers)
    ~headers
    (List.map
       (fun nodes ->
         let g = nodes * 6 in
         let ntiles = int_of_float (Float.round (sqrt (400. *. float_of_int g))) in
         let machine = Machine.summit ~nodes () in
         let r = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:ntiles Fp.Fp64) in
         [
           string_of_int nodes;
           string_of_int g;
           string_of_int (ntiles * nb);
           Printf.sprintf "%.1f" r.Sim.makespan;
           tflops_str r;
           Printf.sprintf "%.2f" (r.Sim.tflops /. float_of_int g);
         ])
       nodes_list)

let strong (scale : scale) =
  let ntiles = if scale.full then 390 else 196 in
  Printf.printf "\n  (b) Strong scalability, fixed matrix N = %d (paper: 798720)\n" (ntiles * nb);
  let nodes_list = if scale.full then [ 4; 8; 16; 32; 64 ] else [ 2; 4; 8; 16 ] in
  let headers = [ "nodes"; "GPUs"; "time (s)"; "aggregate Tflop/s"; "efficiency" ] in
  Table.print
    ~align:(List.map (fun _ -> Table.Right) headers)
    ~headers
    (List.map
       (fun nodes ->
         let machine = Machine.summit ~nodes () in
         let r = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:ntiles Fp.Fp64) in
         [
           string_of_int nodes;
           string_of_int (nodes * 6);
           Printf.sprintf "%.1f" r.Sim.makespan;
           tflops_str r;
           Table.fmt_pct (Sim.efficiency r ~peak_flops_per_gpu:(Gpu.peak_flops Gpu.v100 Fp.Fp64));
         ])
       nodes_list)

let mp_effect (scale : scale) =
  let nodes = if scale.full then 64 else 16 in
  let machine = Machine.summit ~nodes () in
  let g = Machine.total_gpus machine in
  Printf.printf "\n  (c) Mixed-precision effect on %d nodes (%d GPUs)\n" nodes g;
  let sizes =
    if scale.full then [ 192; 288; 390 ] else [ 96; 144; 196 ]
  in
  let headers = [ "N"; "FP64"; "FP32"; "2D-sqexp"; "2D-Matern"; "3D-sqexp"; "best/FP64" ] in
  Table.print
    ~align:(List.map (fun _ -> Table.Right) headers)
    ~headers
    (List.map
       (fun ntiles ->
         let n = ntiles * nb in
         let t64 = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:ntiles Fp.Fp64) in
         let t32 = run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:ntiles Fp.Fp32) in
         let apps =
           List.map
             (fun app ->
               run_sim ~strategy:Sim.Stc_auto ~machine (app_precision_map app ~n))
             applications
         in
         let best =
           List.fold_left (fun acc r -> Float.min acc r.Sim.makespan) t32.Sim.makespan apps
         in
         string_of_int n
         :: tflops_str t64
         :: tflops_str t32
         :: (List.map tflops_str apps
            @ [ Printf.sprintf "%.1fx" (t64.Sim.makespan /. best) ]))
       sizes)

let run (scale : scale) =
  section "fig12" "Scalability on the simulated Summit supercomputer";
  weak scale;
  strong scale;
  mp_effect scale;
  paper
    "near-linear weak scaling; strong scaling trails off at 384 GPUs (running out of work); \
     up to 3.2x MP speedup over FP64, 2D-sqexp best, 3D-sqexp worst"
