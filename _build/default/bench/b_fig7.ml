(* Fig 7: kernel precision executed on each tile for the three
   applications at their operating accuracies, with the percentage of
   tiles per precision — built with the sampled-norm estimator so the
   paper's 409 600 matrix order is reachable directly. *)

open Common

let run (scale : scale) =
  section "fig7" "Kernel-precision composition per application";
  let n = if scale.full then 409600 else 131072 in
  note "matrix order %d, tile size %d (paper: 409600/2048); sampled tile norms" n nb;
  List.iter
    (fun app ->
      let t0 = Unix.gettimeofday () in
      let pmap = app_precision_map app ~n in
      Printf.printf "\n  %s (u_req = %.0e)  [map built in %.1fs]\n" app.app_name app.u_req
        (Unix.gettimeofday () -. t0);
      List.iter
        (fun (p, f) -> Printf.printf "    %-8s %5.1f%%\n" (Fp.name p) (100. *. f))
        (Pm.fractions pmap);
      if Pm.nt pmap <= 40 then print_string (Pm.render pmap))
    applications;
  paper "2D-sqexp cheapest (29.5%% FP16_32 + 46.7%% FP16); 3D-sqexp >60%% in FP64+FP32"
