(* Shared Monte-Carlo MLE machinery for Figs 5 and 6: synthetic replicas at
   known parameters, estimation under each accuracy engine, boxplot
   summaries per parameter. *)

open Common
module Stats = Geomix_util.Stats
module Locations = Geomix_geostat.Locations
module Covariance = Geomix_geostat.Covariance
module Field = Geomix_geostat.Field
module Likelihood = Geomix_geostat.Likelihood
module Mle = Geomix_geostat.Mle

type config = {
  label : string;
  truth : Covariance.t;
  family : Covariance.family;
  dims : int;
  accuracies : (string * Likelihood.engine) list;
}

let engines ~mc_nb levels =
  ("exact", Likelihood.Exact)
  :: List.map
       (fun u -> (Printf.sprintf "%.0e" u, Likelihood.mixed ~u_req:u ~nb:mc_nb ()))
       levels

let param_names = function
  | Covariance.Sqexp | Covariance.Spherical -> [ "variance (sigma^2)"; "range (beta)" ]
  | Covariance.Matern -> [ "variance (sigma^2)"; "range (beta)"; "smoothness (nu)" ]
  | Covariance.Powexp -> [ "variance (sigma^2)"; "range (beta)"; "power" ]

let run_config ~n ~replicas ~max_evals config =
  Printf.printf "\n  --- %s: %d sites, %d replicas, truth = [%s] ---\n%!" config.label n
    replicas
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%g") (Covariance.theta config.truth))));
  let rng = Rng.create ~seed:20260706 in
  let locs =
    Locations.morton_sort
      (if config.dims = 2 then Locations.jittered_grid_2d ~rng ~n
       else Locations.jittered_grid_3d ~rng ~n)
  in
  let zs = Field.synthesize_many ~rng ~cov:config.truth ~replicas locs in
  let settings = { Mle.default_settings with max_evals } in
  let dim = Array.length (Covariance.theta config.truth) in
  let names = param_names config.family in
  let truth = Covariance.theta config.truth in
  let nugget = config.truth.Covariance.nugget in
  List.iter
    (fun (acc_label, engine) ->
      let t0 = Unix.gettimeofday () in
      let fits =
        Array.map
          (fun z -> Mle.fit ~settings ~nugget ~engine ~family:config.family ~locs ~z ())
          zs
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "  accuracy %-7s (%.1fs)\n%!" acc_label dt;
      for p = 0 to dim - 1 do
        let samples = Array.map (fun f -> f.Mle.theta.(p)) fits in
        let fn = Stats.five_number samples in
        Printf.printf "    %-22s true %-6g est %s\n" (List.nth names p) truth.(p)
          (Format.asprintf "%a" Stats.pp_five_number fn)
      done)
    config.accuracies
