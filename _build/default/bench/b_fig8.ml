(* Fig 8: simulated performance of the precision configurations under the
   two conversion strategies on one V100, A100 and H100, across matrix
   sizes up to the platform memory limits, with efficiency vs theoretical
   peaks and the STC-over-TTC speedup. *)

open Common

let sizes_for gen (scale : scale) =
  let machine = Machine.single_gpu gen in
  let cap_fp32 =
    (* FP16-class configs store in FP32: they fit matrices ~√2 larger. *)
    int_of_float
      (sqrt (2. *. Float.pow (float_of_int (Machine.max_matrix_fp64 machine ~nb)) 2.))
    / nb
  in
  let step = if scale.full then 4 else 8 in
  let rec go acc k = if k > cap_fp32 then List.rev acc else go (k :: acc) (k + step) in
  go [] 8

let run (scale : scale) =
  section "fig8" "Precision-conversion strategies on one GPU (simulated)";
  List.iter
    (fun gen ->
      let machine = Machine.single_gpu gen in
      let gpu = Gpu.of_generation gen in
      let fp64_limit = Machine.max_matrix_fp64 machine ~nb / nb in
      Printf.printf "\n  --- %s (FP64 fits up to N=%d) ---\n" gpu.Gpu.name
        (fp64_limit * nb);
      let headers =
        [ "N"; "FP64"; "FP32"; "64/16_32 TTC"; "64/16_32 STC"; "64/16 TTC"; "64/16 STC"; "STC/TTC" ]
      in
      let rows =
        List.map
          (fun ntiles ->
            let t config strategy =
              (run_sim ~strategy ~machine config).Sim.makespan
            in
            let cfg name = List.assoc name (fig8_configs ntiles) in
            let fp64 =
              if ntiles <= fp64_limit then
                Printf.sprintf "%s" (tflops_str (run_sim ~strategy:Sim.Ttc_always ~machine (cfg "FP64")))
              else "-"
            in
            let fp32 = tflops_str (run_sim ~strategy:Sim.Ttc_always ~machine (cfg "FP32")) in
            let h32_ttc = t (cfg "FP64/FP16_32") Sim.Ttc_always in
            let h32_stc = t (cfg "FP64/FP16_32") Sim.Stc_auto in
            let h16_ttc = t (cfg "FP64/FP16") Sim.Ttc_always in
            let h16_stc = t (cfg "FP64/FP16") Sim.Stc_auto in
            let flops = Geomix_precision.Flops.cholesky_tiled ~nt:ntiles ~nb in
            let tf t = Printf.sprintf "%.1f" (flops /. t /. 1e12) in
            [
              string_of_int (ntiles * nb);
              fp64;
              fp32;
              tf h32_ttc;
              tf h32_stc;
              tf h16_ttc;
              tf h16_stc;
              Printf.sprintf "%.2fx" (h16_ttc /. h16_stc);
            ])
          (sizes_for gen scale)
      in
      Table.print ~align:(List.map (fun _ -> Table.Right) headers) ~headers rows;
      (* Efficiency summary at the largest FP64-feasible size. *)
      let r64 =
        run_sim ~strategy:Sim.Stc_auto ~machine (Pm.uniform ~nt:fp64_limit Fp.Fp64)
      in
      let r16 =
        run_sim ~strategy:Sim.Stc_auto ~machine
          (Pm.two_level ~nt:fp64_limit ~off_diag:Fp.Fp16)
      in
      Printf.printf "  FP64 efficiency: %.1f%% of peak;  FP64/FP16 vs FP64 speedup: %.1fx\n"
        (100. *. Sim.efficiency r64 ~peak_flops_per_gpu:(Gpu.peak_flops gpu Fp.Fp64))
        (r64.Sim.makespan /. r16.Sim.makespan))
    generations;
  paper "84.2%%/85%%/62%% FP64 efficiency; STC over TTC up to 1.3x/1.41x/1.27x; 64/16 ≫ FP64"
