(* Systematic (exhaustive) schedule exploration — out of tier-1, run with
   [dune build @verify-slow].  Where the tier-1 suite samples N seeded
   interleavings, this suite enumerates *every* linearization of small
   graphs, so a schedule-dependence bug cannot hide in an unexplored
   corner of the ready-set choice tree. *)

module Explore = Geomix_verify.Explore
module Races = Geomix_verify.Races
module Gen = Geomix_verify.Gen
module Dtd = Geomix_runtime.Dtd
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled

let positions order =
  let pos = Array.make (Array.length order) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  pos

(* Every linearization of a random DTD program reproduces the sequential
   integer-store semantics. *)
let test_programs_schedule_independent () =
  let total = ref 0 in
  for pseed = 0 to 19 do
    (* 8 ops: even a fully independent program has 8! = 40320 schedules,
       comfortably inside the exploration limit, so [complete] must hold. *)
    let spec = { Gen.ops = 8; keys = 3; pseed } in
    let prog = Gen.program_of_spec spec in
    let ops = Array.of_list prog in
    let store = Array.make spec.Gen.keys 0 in
    let body i =
      let { Gen.reads; writes } = ops.(i) in
      let acc = List.fold_left (fun a k -> a + store.(k)) ((17 * i) + 1) reads in
      List.iter (fun k -> store.(k) <- acc + k) writes
    in
    let g = Gen.dtd_of_program ~body prog in
    let graph = Explore.of_dtd g in
    let run order =
      Array.fill store 0 spec.Gen.keys 0;
      Array.iter (Dtd.execute_task g) order;
      Array.copy store
    in
    let reference = run (Explore.sequential_schedule graph) in
    let r =
      Explore.explore_systematic ~limit:200_000 graph ~f:(fun order ->
        if run order <> reference then
          Alcotest.failf "program pseed=%d: schedule [%s] diverges from sequential" pseed
            (String.concat " " (List.map string_of_int (Array.to_list order))))
    in
    Alcotest.(check bool) (Printf.sprintf "pseed=%d fully explored" pseed) true
      r.Explore.complete;
    total := !total + r.Explore.explored
  done;
  Printf.printf "systematic: %d schedules checked across 20 programs\n%!" !total

let build_cholesky_dtd a =
  let nt = Tiled.nt a in
  let g = Dtd.create () in
  let key i j = (i * nt) + j in
  for k = 0 to nt - 1 do
    ignore
      (Dtd.insert g ~name:(Printf.sprintf "POTRF(%d)" k) ~reads:[] ~writes:[ key k k ]
         (fun () -> Blas.potrf_lower (Tiled.tile a k k)));
    for m = k + 1 to nt - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "TRSM(%d,%d)" m k)
           ~reads:[ key k k ] ~writes:[ key m k ]
           (fun () -> Blas.trsm_right_lower_trans ~l:(Tiled.tile a k k) (Tiled.tile a m k)))
    done;
    for m = k + 1 to nt - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "SYRK(%d,%d)" m k)
           ~reads:[ key m k ] ~writes:[ key m m ]
           (fun () ->
             Blas.syrk_lower ~alpha:(-1.) (Tiled.tile a m k) ~beta:1. (Tiled.tile a m m)));
      for n = k + 1 to m - 1 do
        ignore
          (Dtd.insert g
             ~name:(Printf.sprintf "GEMM(%d,%d,%d)" m n k)
             ~reads:[ key m k; key n k ]
             ~writes:[ key m n ]
             (fun () ->
               Blas.gemm_nt ~alpha:(-1.) (Tiled.tile a m k) (Tiled.tile a n k) ~beta:1.
                 (Tiled.tile a m n)))
      done
    done
  done;
  g

(* Every linearization of the nt=3 tile Cholesky DTD produces a correct
   factorization.  Each schedule factorizes a fresh copy (the bodies
   mutate tiles in place), so the graph is rebuilt per schedule from the
   structural order explored on a throwaway copy. *)
let test_cholesky_all_schedules () =
  let n = 24 and nb = 8 in
  let dense =
    Mat.init ~rows:n ~cols:n (fun i j ->
      (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
  in
  let graph = Explore.of_dtd (build_cholesky_dtd (Tiled.of_dense ~nb dense)) in
  let checked = ref 0 in
  let r =
    Explore.explore_systematic ~limit:5_000 graph ~f:(fun order ->
      let a = Tiled.of_dense ~nb dense in
      let g = build_cholesky_dtd a in
      Array.iter (Dtd.execute_task g) order;
      Tiled.iter_lower a (fun ~i ~j tile -> if i = j then Mat.zero_upper tile);
      let l = Tiled.to_dense a in
      Mat.zero_upper l;
      let res = Check.cholesky_residual ~a:dense ~l in
      if res > 1e-13 then
        Alcotest.failf "schedule [%s]: residual %.3e"
          (String.concat " " (List.map string_of_int (Array.to_list order)))
          res;
      incr checked)
  in
  Alcotest.(check bool) "all Cholesky schedules explored" true r.Explore.complete;
  Printf.printf "systematic: %d Cholesky schedules verified\n%!" !checked

(* A reported race is not just a structural possibility: systematic
   exploration of the broken DAG finds concrete schedules on both sides of
   the unordered pair, i.e. the conflicting accesses really do flip. *)
let test_dropped_edge_flips_in_some_schedule () =
  let g = Dtd.create () in
  let _w0 = Dtd.insert g ~name:"w0" ~reads:[] ~writes:[ 7 ] (fun () -> ()) in
  let r = Dtd.insert g ~name:"r" ~reads:[ 7 ] ~writes:[] (fun () -> ()) in
  let w1 = Dtd.insert g ~name:"w1" ~reads:[] ~writes:[ 7 ] (fun () -> ()) in
  let race =
    match Races.check_dtd ~drop:(r, w1) g with
    | [ race ] -> race
    | rs -> Alcotest.failf "expected one race, got %d" (List.length rs)
  in
  let successors id =
    let ss = Dtd.successors g id in
    if id = r then List.filter (fun s -> s <> w1) ss else ss
  in
  let num_tasks = Dtd.num_tasks g in
  let in_degree = Array.make num_tasks 0 in
  for id = 0 to num_tasks - 1 do
    List.iter (fun s -> in_degree.(s) <- in_degree.(s) + 1) (successors id)
  done;
  let broken = Explore.graph ~num_tasks ~in_degree ~successors in
  let forward = ref false and flipped = ref false in
  let r' =
    Explore.explore_systematic broken ~f:(fun order ->
      let pos = positions order in
      if pos.(race.Races.first) < pos.(race.Races.second) then forward := true
      else flipped := true)
  in
  Alcotest.(check bool) "explored completely" true r'.Explore.complete;
  Alcotest.(check bool) "some schedule keeps sequential order" true !forward;
  Alcotest.(check bool) "some schedule flips the racing pair" true !flipped

let () =
  Alcotest.run "verify-slow"
    [
      ( "systematic exploration",
        [
          Alcotest.test_case "programs schedule-independent" `Slow
            test_programs_schedule_independent;
          Alcotest.test_case "cholesky all schedules" `Slow test_cholesky_all_schedules;
          Alcotest.test_case "dropped edge flips" `Slow
            test_dropped_edge_flips_in_some_schedule;
        ] );
    ]
