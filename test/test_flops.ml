module Flops = Geomix_precision.Flops
module Fp = Geomix_precision.Fpformat

let feq a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs b)

let test_gemm () = Alcotest.(check bool) "2n³" true (feq (Flops.gemm 10) 2000.)
let test_trsm () = Alcotest.(check bool) "n³" true (feq (Flops.trsm 10) 1000.)
let test_syrk () = Alcotest.(check bool) "n²(n+1)" true (feq (Flops.syrk 10) 1100.)

let test_potrf_leading_term () =
  let n = 1000 in
  let expected = float_of_int n ** 3. /. 3. in
  Alcotest.(check bool) "≈ n³/3" true
    (Float.abs (Flops.potrf n -. expected) /. expected < 2e-3)

let test_cholesky_tiled_equals_scalar () =
  (* Tiled kernel counts must sum to the full-matrix Cholesky count when
     tile bookkeeping is exact. *)
  List.iter
    (fun (ntiles, nb) ->
      let tiled = Flops.cholesky_tiled ~nt:ntiles ~nb in
      let scalar = Flops.cholesky (ntiles * nb) in
      Alcotest.(check bool)
        (Printf.sprintf "nt=%d nb=%d: %g vs %g" ntiles nb tiled scalar)
        true
        (Float.abs (tiled -. scalar) /. scalar < 0.02))
    [ (4, 32); (8, 16); (16, 64) ]

let test_gemm_full () =
  Alcotest.(check bool) "2mnk" true (feq (Flops.gemm_full ~m:2 ~n:3 ~k:4) 48.)

let test_tile_bytes () =
  Alcotest.(check bool) "fp64 tile" true
    (feq (Flops.tile_bytes ~nb:128 ~scalar:Fp.S_fp64) (128. *. 128. *. 8.));
  Alcotest.(check bool) "fp16 tile" true
    (feq (Flops.tile_bytes ~nb:128 ~scalar:Fp.S_fp16) (128. *. 128. *. 2.));
  (* One byte per element for both FP8 formats — no silent FP64 fallback
     for the newest scalars. *)
  Alcotest.(check bool) "e4m3 tile" true
    (feq (Flops.tile_bytes ~nb:128 ~scalar:Fp.S_fp8_e4m3) (128. *. 128. *. 1.));
  Alcotest.(check bool) "e5m2 tile" true
    (feq (Flops.tile_bytes ~nb:128 ~scalar:Fp.S_fp8_e5m2) (128. *. 128. *. 1.))

let prop_cholesky_monotone =
  QCheck.Test.make ~name:"cholesky flops monotone in n" ~count:100
    (QCheck.pair (QCheck.int_range 1 500) (QCheck.int_range 1 500))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Flops.cholesky lo <= Flops.cholesky hi)

let () =
  Alcotest.run "flops"
    [
      ( "flops",
        [
          Alcotest.test_case "gemm" `Quick test_gemm;
          Alcotest.test_case "trsm" `Quick test_trsm;
          Alcotest.test_case "syrk" `Quick test_syrk;
          Alcotest.test_case "potrf leading term" `Quick test_potrf_leading_term;
          Alcotest.test_case "tiled sums to scalar" `Quick test_cholesky_tiled_equals_scalar;
          Alcotest.test_case "gemm_full" `Quick test_gemm_full;
          Alcotest.test_case "tile bytes" `Quick test_tile_bytes;
          QCheck_alcotest.to_alcotest prop_cholesky_monotone;
        ] );
    ]
