(* CLI contract: shell the built binary and pin the exit codes and help
   surface the chaos suite's callers (CI, Makefile) rely on.  Everything
   here runs tiny seeded configurations — a few hundred milliseconds. *)

(* `dune runtest` runs with cwd = test/ inside _build (where the declared
   ../bin/geomix.exe dep lives); `dune exec test/test_cli.exe` runs from
   the project root. *)
let geomix =
  List.find Sys.file_exists
    [ "../bin/geomix.exe"; "_build/default/bin/geomix.exe" ]

(* Run the binary, capturing stdout+stderr; returns (exit code, output). *)
let run args =
  let cmd =
    Printf.sprintf "%s %s 2>&1" (Filename.quote geomix)
      (String.concat " " (List.map Filename.quote args))
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let check_contains out affix =
  Alcotest.(check bool) (Printf.sprintf "output mentions %S" affix) true
    (contains ~affix out)

let test_chaos_help_documents_exit_codes () =
  let code, out = run [ "chaos"; "--help=plain" ] in
  Alcotest.(check int) "--help exits 0" 0 code;
  check_contains out "EXIT STATUS";
  (* The three contract outcomes must all be documented. *)
  check_contains out "bitwise identical";
  check_contains out "escaped the integrity guard";
  check_contains out "--sdc"

let test_unknown_subcommand_fails () =
  let code, out = run [ "frobnicate" ] in
  Alcotest.(check bool) "unknown subcommand exits nonzero" true (code <> 0);
  check_contains (String.lowercase_ascii out) "usage"

let test_serve_help_documents_surface () =
  let code, out = run [ "serve"; "--help=plain" ] in
  Alcotest.(check int) "serve --help exits 0" 0 code;
  check_contains out "--socket";
  check_contains out "--max-inflight";
  check_contains out "--queue-capacity";
  check_contains out "--cache-capacity";
  check_contains out "--max-requests"

let test_serve_listed_in_toplevel_help () =
  let code, out = run [ "--help=plain" ] in
  Alcotest.(check int) "--help exits 0" 0 code;
  check_contains out "serve"

let test_chaos_clean_run_exits_zero () =
  let code, out = run [ "chaos"; "--seed"; "1"; "--nt"; "4"; "--nb"; "8" ] in
  Alcotest.(check int) "clean chaos exits 0" 0 code;
  check_contains out "bitwise identical"

let test_chaos_sdc_contract () =
  let metrics = Filename.temp_file "geomix_sdc" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove metrics)
    (fun () ->
      let code, out =
        run
          [
            "chaos"; "--sdc"; "--seed"; "1"; "--nt"; "4"; "--nb"; "8";
            "--rate"; "0.5"; "--metrics-out"; metrics;
          ]
      in
      Alcotest.(check int) "recovered SDC run exits 0" 0 code;
      check_contains out "SDC detected";
      check_contains out "bitwise identical";
      let ic = open_in metrics in
      let json =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_contains json "integrity.sdc_detected";
      check_contains json "integrity.sdc_recovered")

let () =
  Alcotest.run "cli"
    [
      ( "chaos contract",
        [
          Alcotest.test_case "help documents exit codes" `Quick
            test_chaos_help_documents_exit_codes;
          Alcotest.test_case "unknown subcommand" `Quick
            test_unknown_subcommand_fails;
          Alcotest.test_case "serve help surface" `Quick
            test_serve_help_documents_surface;
          Alcotest.test_case "serve listed" `Quick
            test_serve_listed_in_toplevel_help;
          Alcotest.test_case "clean run exits 0" `Quick
            test_chaos_clean_run_exits_zero;
          Alcotest.test_case "sdc detect-and-recover" `Quick
            test_chaos_sdc_contract;
        ] );
    ]
