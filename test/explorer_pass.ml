(* Schedule-explorer smoke pass, the second leg of [make check]: a numeric
   tile Cholesky expressed through DTD insertion, replayed under 10 seeded
   interleavings of the ready set.  Every schedule must produce a correct
   factorization; any failure prints the offending seed (rebuild the exact
   interleaving with [Explore.random_schedule ~seed]) and exits nonzero. *)

module Explore = Geomix_verify.Explore
module Dtd = Geomix_runtime.Dtd
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled

let build_cholesky_dtd a =
  let nt = Tiled.nt a in
  let g = Dtd.create () in
  let key i j = (i * nt) + j in
  for k = 0 to nt - 1 do
    ignore
      (Dtd.insert g ~name:(Printf.sprintf "POTRF(%d)" k) ~reads:[] ~writes:[ key k k ]
         (fun () -> Blas.potrf_lower (Tiled.tile a k k)));
    for m = k + 1 to nt - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "TRSM(%d,%d)" m k)
           ~reads:[ key k k ] ~writes:[ key m k ]
           (fun () -> Blas.trsm_right_lower_trans ~l:(Tiled.tile a k k) (Tiled.tile a m k)))
    done;
    for m = k + 1 to nt - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "SYRK(%d,%d)" m k)
           ~reads:[ key m k ] ~writes:[ key m m ]
           (fun () ->
             Blas.syrk_lower ~alpha:(-1.) (Tiled.tile a m k) ~beta:1. (Tiled.tile a m m)));
      for n = k + 1 to m - 1 do
        ignore
          (Dtd.insert g
             ~name:(Printf.sprintf "GEMM(%d,%d,%d)" m n k)
             ~reads:[ key m k; key n k ]
             ~writes:[ key m n ]
             (fun () ->
               Blas.gemm_nt ~alpha:(-1.) (Tiled.tile a m k) (Tiled.tile a n k) ~beta:1.
                 (Tiled.tile a m n)))
      done
    done
  done;
  g

let () =
  let n = 64 and nb = 16 and seeds = 10 in
  let dense =
    Mat.init ~rows:n ~cols:n (fun i j ->
      (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
  in
  let failures = ref 0 in
  for seed = 0 to seeds - 1 do
    let a = Tiled.of_dense ~nb dense in
    let g = build_cholesky_dtd a in
    ignore (Explore.run_random (Explore.of_dtd g) ~seed ~execute:(Dtd.execute_task g));
    Tiled.iter_lower a (fun ~i ~j tile -> if i = j then Mat.zero_upper tile);
    let l = Tiled.to_dense a in
    Mat.zero_upper l;
    let res = Check.cholesky_residual ~a:dense ~l in
    if res > 1e-13 then begin
      incr failures;
      Printf.printf "FAIL seed %2d: residual %.3e\n%!" seed res
    end
    else Printf.printf "ok   seed %2d: residual %.3e\n%!" seed res
  done;
  if !failures = 0 then
    Printf.printf "explorer pass: %d/%d seeded schedules correct\n%!" seeds seeds
  else begin
    Printf.printf "explorer pass: %d/%d schedules FAILED\n%!" !failures seeds;
    exit 1
  end
