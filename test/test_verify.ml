module Explore = Geomix_verify.Explore
module Races = Geomix_verify.Races
module Gen = Geomix_verify.Gen
module Oracle = Geomix_verify.Oracle
module Dtd = Geomix_runtime.Dtd
module Dag_exec = Geomix_parallel.Dag_exec
module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Trace = Geomix_runtime.Trace

(* Every property suite runs under this fixed QCheck state: the whole file
   is deterministic run to run (generator specs carry their own Rng seeds
   on top, so counterexamples replay from their printed spec alone). *)
let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xC0FFEE |]) t

(* 0 → {1, 2} → 3 *)
let diamond =
  Explore.graph ~num_tasks:4
    ~in_degree:[| 0; 1; 1; 2 |]
    ~successors:(function 0 -> [ 1; 2 ] | 3 -> [] | _ -> [ 3 ])

let independent n =
  Explore.graph ~num_tasks:n ~in_degree:(Array.make n 0) ~successors:(fun _ -> [])

let chain n =
  Explore.graph ~num_tasks:n
    ~in_degree:(Array.init n (fun i -> if i = 0 then 0 else 1))
    ~successors:(fun id -> if id + 1 < n then [ id + 1 ] else [])

let positions order =
  let pos = Array.make (Array.length order) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  pos

(* The graph of a DTD program with one derived edge removed — what the
   race checker's witness schedules must be validated against. *)
let broken_graph g ~drop:(src, dst) =
  let successors id =
    let ss = Dtd.successors g id in
    if id = src then List.filter (fun s -> s <> dst) ss else ss
  in
  let num_tasks = Dtd.num_tasks g in
  let in_degree = Array.make num_tasks 0 in
  for id = 0 to num_tasks - 1 do
    List.iter (fun s -> in_degree.(s) <- in_degree.(s) + 1) (successors id)
  done;
  Explore.graph ~num_tasks ~in_degree ~successors

(* --- schedule explorer ------------------------------------------------ *)

let test_random_schedules_topological_and_diverse () =
  let saw_12 = ref false and saw_21 = ref false in
  Explore.for_each_seed ~seeds:20 diamond (fun ~seed:_ order ->
    let pos = positions order in
    if pos.(1) < pos.(2) then saw_12 := true else saw_21 := true);
  Alcotest.(check bool) "both middle orders explored" true (!saw_12 && !saw_21)

let test_replay_from_seed () =
  let g = Gen.dag_of_spec { Gen.tasks = 25; density = 0.3; seed = 11 } in
  Alcotest.(check (array int)) "same seed, same schedule"
    (Explore.random_schedule g ~seed:3)
    (Explore.random_schedule g ~seed:3);
  Alcotest.(check bool) "topological" true
    (Explore.is_topological g (Explore.random_schedule g ~seed:3))

let test_sequential_schedule_is_insertion_order () =
  let g = Gen.dtd_of_program (Gen.program_of_spec { Gen.ops = 30; keys = 4; pseed = 5 }) in
  let graph = Explore.of_dtd g in
  Alcotest.(check (array int)) "insertion order"
    (Array.init 30 Fun.id)
    (Explore.sequential_schedule graph)

let test_systematic_counts () =
  let count g =
    let r = Explore.explore_systematic g ~f:(fun o -> assert (Explore.is_topological g o)) in
    Alcotest.(check bool) "complete" true r.Explore.complete;
    r.Explore.explored
  in
  Alcotest.(check int) "diamond has 2 linearizations" 2 (count diamond);
  Alcotest.(check int) "4 independent tasks: 4!" 24 (count (independent 4));
  Alcotest.(check int) "chain of 5: single order" 1 (count (chain 5))

let test_systematic_limit () =
  let r = Explore.explore_systematic ~limit:10 (independent 6) ~f:(fun _ -> ()) in
  Alcotest.(check int) "truncated at limit" 10 r.Explore.explored;
  Alcotest.(check bool) "reported incomplete" false r.Explore.complete

let test_run_schedule_rejects_invalid () =
  Alcotest.check_raises "non-topological order rejected"
    (Invalid_argument "Explore.run_schedule: order is not a topological order")
    (fun () -> Explore.run_schedule diamond ~order:[| 3; 0; 1; 2 |] ~execute:(fun _ -> ()))

let prop_random_schedule_topological =
  QCheck.Test.make ~name:"random schedules are topological orders" ~count:200
    (QCheck.pair (Gen.dag_spec ~max_tasks:40 ()) (QCheck.int_range 0 1000))
    (fun (spec, seed) ->
      let g = Gen.dag_of_spec spec in
      Explore.is_topological g (Explore.random_schedule g ~seed))

(* --- race checker ----------------------------------------------------- *)

(* The decisive seeded-bug test: a WAR dependency the runtime derived is
   deliberately dropped; the checker must report exactly that pair, with a
   witness interleaving of the broken DAG that runs the writer before the
   reader. *)
let test_seeded_bug_detected () =
  let g = Dtd.create () in
  let _w0 = Dtd.insert g ~name:"w0" ~reads:[] ~writes:[ 7 ] (fun () -> ()) in
  let r = Dtd.insert g ~name:"r" ~reads:[ 7 ] ~writes:[] (fun () -> ()) in
  let w1 = Dtd.insert g ~name:"w1" ~reads:[] ~writes:[ 7 ] (fun () -> ()) in
  Alcotest.(check int) "intact graph is race-free" 0 (List.length (Races.check_dtd g));
  match Races.check_dtd ~drop:(r, w1) g with
  | [ race ] ->
    Alcotest.(check int) "reader is first" r race.Races.first;
    Alcotest.(check int) "writer is second" w1 race.Races.second;
    Alcotest.(check int) "conflicting datum" 7 race.Races.key;
    Alcotest.(check string) "kind" "WAR" (Races.kind_name race.Races.kind);
    let broken = broken_graph g ~drop:(r, w1) in
    Alcotest.(check bool) "witness is a schedule of the broken DAG" true
      (Explore.is_topological broken race.Races.witness);
    let pos = positions race.Races.witness in
    Alcotest.(check bool) "witness runs w1 before r" true (pos.(w1) < pos.(r))
  | rs -> Alcotest.failf "expected exactly one race, got %d" (List.length rs)

(* Same discipline on the real workload shape: drop the RAW edge
   TRSM(1,0) → SYRK(1,0) from a tile-Cholesky DTD program. *)
let test_seeded_bug_cholesky_shaped () =
  let nt = 3 in
  let g = Dtd.create () in
  let key i j = (i * nt) + j in
  let id = Hashtbl.create 16 in
  for k = 0 to nt - 1 do
    Hashtbl.add id (`P k)
      (Dtd.insert g ~name:(Printf.sprintf "POTRF(%d)" k) ~reads:[] ~writes:[ key k k ]
         (fun () -> ()));
    for m = k + 1 to nt - 1 do
      Hashtbl.add id (`T (m, k))
        (Dtd.insert g
           ~name:(Printf.sprintf "TRSM(%d,%d)" m k)
           ~reads:[ key k k ] ~writes:[ key m k ] (fun () -> ()))
    done;
    for m = k + 1 to nt - 1 do
      Hashtbl.add id (`S (m, k))
        (Dtd.insert g
           ~name:(Printf.sprintf "SYRK(%d,%d)" m k)
           ~reads:[ key m k ] ~writes:[ key m m ] (fun () -> ()));
      for n = k + 1 to m - 1 do
        Hashtbl.add id (`G (m, n, k))
          (Dtd.insert g
             ~name:(Printf.sprintf "GEMM(%d,%d,%d)" m n k)
             ~reads:[ key m k; key n k ]
             ~writes:[ key m n ] (fun () -> ()))
      done
    done
  done;
  Alcotest.(check int) "intact Cholesky DTD is race-free" 0
    (List.length (Races.check_dtd g));
  let trsm10 = Hashtbl.find id (`T (1, 0)) and syrk10 = Hashtbl.find id (`S (1, 0)) in
  match Races.check_dtd ~drop:(trsm10, syrk10) g with
  | [ race ] ->
    Alcotest.(check int) "TRSM(1,0)" trsm10 race.Races.first;
    Alcotest.(check int) "SYRK(1,0)" syrk10 race.Races.second;
    Alcotest.(check string) "RAW" "RAW" (Races.kind_name race.Races.kind);
    let pos = positions race.Races.witness in
    Alcotest.(check bool) "witness flips the pair" true (pos.(syrk10) < pos.(trsm10))
  | rs ->
    Alcotest.failf "expected exactly the TRSM→SYRK race, got %d: %s" (List.length rs)
      (String.concat "; " (List.map (Races.to_string ~name:(Dtd.name g)) rs))

let prop_dtd_derivation_race_free =
  QCheck.Test.make ~name:"DTD-derived DAGs cover every conflicting pair" ~count:200
    (Gen.program_spec ~max_ops:40 ~max_keys:8 ())
    (fun spec -> Races.check_dtd (Gen.dtd_of_program (Gen.program_of_spec spec)) = [])

(* Reachability over a successor function, for cross-checking witnesses. *)
let reaches ~successors a b =
  let seen = Hashtbl.create 16 in
  let rec go id =
    id = b
    || List.exists
         (fun s ->
           (not (Hashtbl.mem seen s))
           && begin
                Hashtbl.add seen s ();
                go s
              end)
         (successors id)
  in
  go a

let prop_dropped_edge_races_are_real =
  QCheck.Test.make ~name:"every race reported for a broken DAG is real" ~count:100
    (Gen.program_spec ~max_ops:20 ~max_keys:4 ())
    (fun spec ->
      let g = Gen.dtd_of_program (Gen.program_of_spec spec) in
      (* Drop the first derived edge, if any. *)
      let rec first_edge i =
        if i >= Dtd.num_tasks g then None
        else match Dtd.successors g i with [] -> first_edge (i + 1) | s :: _ -> Some (i, s)
      in
      match first_edge 0 with
      | None -> true
      | Some (src, dst) ->
        let broken = broken_graph g ~drop:(src, dst) in
        let races = Races.check_dtd ~drop:(src, dst) g in
        let race_real r =
          let ra, wa = Dtd.footprint g r.Races.first in
          let rb, wb = Dtd.footprint g r.Races.second in
          let conflicting =
            List.exists (fun k -> List.mem k rb || List.mem k wb) wa
            || List.exists (fun k -> List.mem k wb) ra
          in
          let unordered =
            (not (reaches ~successors:broken.Explore.successors r.Races.first r.Races.second))
            && not (reaches ~successors:broken.Explore.successors r.Races.second r.Races.first)
          in
          let pos = positions r.Races.witness in
          conflicting && unordered
          && Explore.is_topological broken r.Races.witness
          && pos.(r.Races.second) < pos.(r.Races.first)
        in
        let dropped_pair_covered =
          (* If (src, dst) itself conflicts and has no alternate path, it
             must be among the reported races. *)
          let _, wsrc = Dtd.footprint g src in
          let rdst, wdst = Dtd.footprint g dst in
          let conflicting =
            List.exists (fun k -> List.mem k rdst || List.mem k wdst) wsrc
            || List.exists
                 (fun k -> List.mem k wdst)
                 (fst (Dtd.footprint g src))
          in
          (not conflicting)
          || reaches ~successors:broken.Explore.successors src dst
          || List.exists (fun r -> r.Races.first = src && r.Races.second = dst) races
        in
        List.for_all race_real races && dropped_pair_covered)

(* --- explorer × DTD: schedule-independence of sequential semantics ----- *)

let prop_all_schedules_match_sequential =
  QCheck.Test.make ~name:"every explored schedule reproduces sequential semantics"
    ~count:100
    (Gen.program_spec ~max_ops:25 ~max_keys:5 ())
    (fun spec ->
      let prog = Gen.program_of_spec spec in
      let ops = Array.of_list prog in
      let store = Array.make spec.Gen.keys 0 in
      let body i =
        let { Gen.reads; writes } = ops.(i) in
        let acc = List.fold_left (fun a k -> a + store.(k)) ((17 * i) + 1) reads in
        List.iter (fun k -> store.(k) <- acc + k) writes
      in
      let g = Gen.dtd_of_program ~body prog in
      let graph = Explore.of_dtd g in
      let run order =
        Array.fill store 0 spec.Gen.keys 0;
        Array.iter (Dtd.execute_task g) order;
        Array.copy store
      in
      let reference = run (Explore.sequential_schedule graph) in
      let ok = ref true in
      Explore.for_each_seed ~seeds:5 graph (fun ~seed:_ order ->
        if run order <> reference then ok := false);
      !ok)

(* --- Fpformat properties ---------------------------------------------- *)

(* Floats by sign/exponent/mantissa so that every format's normal and
   subnormal ranges (and overflow) are all actually exercised — a uniform
   range generator would put essentially every sample beyond FP16. *)
let float_gen =
  QCheck.make ~print:string_of_float
    QCheck.Gen.(
      triple (int_range (-140) 140) (float_bound_inclusive 1.) bool
      >|= fun (e, m, neg) ->
      let x = Float.ldexp (1. +. m) e in
      if neg then -.x else x)

let prop_refining_roundtrip_exact =
  QCheck.Test.make ~name:"down-then-up never gains bits (refining round-trip exact)"
    ~count:2000
    (QCheck.triple Gen.scalar Gen.scalar float_gen)
    (fun (s, t, x) ->
      (not (Fp.refines t s))
      ||
      let down = Fp.round s x in
      (Float.is_nan down && Float.is_nan x) || Fp.round t down = down)

let prop_down_up_down_stable =
  QCheck.Test.make ~name:"down-up-down through a refining format is the identity"
    ~count:2000
    (QCheck.triple Gen.scalar Gen.scalar float_gen)
    (fun (s, t, x) ->
      (not (Fp.refines t s))
      ||
      let down = Fp.round s x in
      (Float.is_nan down && Float.is_nan x) || Fp.round s (Fp.round t down) = down)

let prop_fp64_roundtrip_exact =
  QCheck.Test.make ~name:"Fp64 round-trip exact" ~count:1000 float_gen (fun x ->
    Fp.round Fp.S_fp64 x = x)

let prop_refines_consistent_with_rank =
  QCheck.Test.make ~name:"refines ⊆ scalar_rank order; fp16/bf16 incomparable"
    ~count:200
    (QCheck.pair Gen.scalar Gen.scalar)
    (fun (s, t) ->
      (* Refinement implies rank order except on the incomparable pair. *)
      (not (Fp.refines t s)) || s = t || Fp.scalar_rank t > Fp.scalar_rank s)

(* --- Comm_map: STC ⇔ strictly-lower successors, vs brute-force oracle -- *)

let prop_comm_map_matches_oracle =
  QCheck.Test.make ~name:"Comm_map.compute = brute-force Algorithm 2" ~count:200
    (Gen.pmap_spec ~max_nt:12 ())
    (fun spec -> Oracle.comm_map_agrees (Gen.pmap_of_spec spec))

let prop_stc_iff_strictly_below_storage =
  QCheck.Test.make ~name:"STC ⇔ comm strictly below storage" ~count:200
    (Gen.pmap_spec ~max_nt:12 ())
    (fun spec ->
      let pmap = Gen.pmap_of_spec spec in
      let cm = Cm.compute pmap in
      let ok = ref true in
      for i = 0 to Pm.nt pmap - 1 do
        for j = 0 to i do
          let stc = Cm.strategy cm i j = Cm.Stc in
          let below =
            Fp.scalar_rank (Cm.comm_scalar cm i j) < Fp.scalar_rank (Pm.storage pmap i j)
          in
          if stc <> below then ok := false
        done
      done;
      !ok)

let prop_comm_map_deterministic =
  QCheck.Test.make ~name:"Comm_map.compute is deterministic" ~count:100
    (Gen.pmap_spec ~max_nt:10 ())
    (fun spec ->
      let pmap = Gen.pmap_of_spec spec in
      Cm.equal (Cm.compute pmap) (Cm.compute pmap))

(* --- Trace invariants -------------------------------------------------- *)

let prop_trace_utilisation_bounded =
  QCheck.Test.make ~name:"utilisation ∈ [0, 1]" ~count:200
    (Gen.trace_spec ~max_resources:4 ~max_events:8 ())
    (fun spec ->
      let t = Gen.trace_of_spec spec in
      let u = Trace.utilisation t ~resources:spec.Gen.resources in
      u >= 0. && u <= 1.)

let prop_trace_makespan_dominates_busy =
  QCheck.Test.make ~name:"makespan ≥ busy_time per resource" ~count:200
    (Gen.trace_spec ~max_resources:4 ~max_events:8 ())
    (fun spec ->
      let t = Gen.trace_of_spec spec in
      let span = Trace.makespan t in
      let ok = ref true in
      for r = 0 to spec.Gen.resources - 1 do
        if Trace.busy_time t ~resource:r > span +. 1e-12 then ok := false
      done;
      !ok)

let prop_trace_occupancy_bounded =
  QCheck.Test.make ~name:"occupancy_series values ∈ [0, 1]" ~count:200
    (QCheck.pair (Gen.trace_spec ~max_resources:4 ~max_events:8 ()) (QCheck.int_range 1 20))
    (fun (spec, w) ->
      let t = Gen.trace_of_spec spec in
      let window = float_of_int w /. 10. in
      Array.for_all
        (fun (time, occ) -> time >= 0. && occ >= -1e-12 && occ <= 1. +. 1e-12)
        (Trace.occupancy_series t ~resources:spec.Gen.resources ~window))

(* --- Oracle: mixed-precision Cholesky vs FP64 reference ---------------- *)

let prop_mp_cholesky_within_bound =
  QCheck.Test.make ~name:"Mp_cholesky residual ≤ Higham–Mary bound (random pmaps)"
    ~count:100
    (QCheck.pair (Gen.spd_spec ~min_n:8 ~max_n:48 ()) (QCheck.int_range 0 1_000_000))
    (fun (mspec, kseed) ->
      let dense = Gen.spd_of_spec mspec in
      let nb = 8 in
      let nt = (mspec.Gen.n + nb - 1) / nb in
      let pmap = Gen.pmap_of_spec { Gen.nt; kseed } in
      let residual, bound, fp64 = Oracle.check_cholesky ~pmap ~nb dense in
      residual <= bound && fp64 <= 1e-12)

let () =
  Alcotest.run "verify"
    [
      ( "schedule explorer",
        [
          Alcotest.test_case "topological + diverse" `Quick
            test_random_schedules_topological_and_diverse;
          Alcotest.test_case "replay from seed" `Quick test_replay_from_seed;
          Alcotest.test_case "sequential = insertion order" `Quick
            test_sequential_schedule_is_insertion_order;
          Alcotest.test_case "systematic counts" `Quick test_systematic_counts;
          Alcotest.test_case "systematic limit" `Quick test_systematic_limit;
          Alcotest.test_case "invalid order rejected" `Quick test_run_schedule_rejects_invalid;
          qtest prop_random_schedule_topological;
        ] );
      ( "race checker",
        [
          Alcotest.test_case "seeded bug detected (WAR)" `Quick test_seeded_bug_detected;
          Alcotest.test_case "seeded bug detected (Cholesky RAW)" `Quick
            test_seeded_bug_cholesky_shaped;
          qtest prop_dtd_derivation_race_free;
          qtest prop_dropped_edge_races_are_real;
        ] );
      ("schedule independence", [ qtest prop_all_schedules_match_sequential ]);
      ( "fpformat properties",
        [
          qtest prop_refining_roundtrip_exact;
          qtest prop_down_up_down_stable;
          qtest prop_fp64_roundtrip_exact;
          qtest prop_refines_consistent_with_rank;
        ] );
      ( "comm_map oracle",
        [
          qtest prop_comm_map_matches_oracle;
          qtest prop_stc_iff_strictly_below_storage;
          qtest prop_comm_map_deterministic;
        ] );
      ( "trace invariants",
        [
          qtest prop_trace_utilisation_bounded;
          qtest prop_trace_makespan_dominates_busy;
          qtest prop_trace_occupancy_bounded;
        ] );
      ("cholesky oracle", [ qtest prop_mp_cholesky_within_bound ]);
    ]
