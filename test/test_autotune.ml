(* The autotune tier: range-tracker invariants, advisor admissibility and
   the differential oracle, pilot non-interference, and frontier
   determinism.  Everything here is seeded — no wall-clock, no
   environment. *)

module Fp = Geomix_precision.Fpformat
module Mat = Geomix_linalg.Mat
module Tiled = Geomix_tile.Tiled
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Mp = Geomix_core.Mp_cholesky
module Dtd = Geomix_runtime.Dtd
module Rt = Geomix_autotune.Range_tracker
module Ta = Geomix_autotune.Type_advisor
module Pe = Geomix_autotune.Pareto_explorer

let scalar = Alcotest.testable Fp.pp_scalar ( = )

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- Range_tracker ----------------------------------------------------- *)

let hist_total st = List.fold_left (fun acc (_, n) -> acc + n) 0 st.Rt.exponents

let test_tracker_invariants () =
  let t = Rt.create ~nt:2 in
  List.iter
    (Rt.observe_value t ~i:1 ~j:0)
    [ 1.0; -3.5; 0.; 0.25; nan; infinity; 1e-300; -0.; 2.0 ];
  let st = Rt.stats t 1 0 in
  Alcotest.(check int) "observations" 9 st.Rt.observations;
  Alcotest.(check int) "zeros" 2 st.Rt.zeros;
  Alcotest.(check int) "nonfinite" 2 st.Rt.nonfinite;
  Alcotest.(check int) "histogram accounts for the rest"
    (st.Rt.observations - st.Rt.zeros - st.Rt.nonfinite)
    (hist_total st);
  Alcotest.(check (float 0.)) "min" 1e-300 st.Rt.min_mag;
  Alcotest.(check (float 0.)) "max" 3.5 st.Rt.max_mag;
  Alcotest.(check bool) "min <= max" true (st.Rt.min_mag <= st.Rt.max_mag);
  (* Untouched tiles stay pristine. *)
  let st00 = Rt.stats t 0 0 in
  Alcotest.(check int) "untouched tile" 0 st00.Rt.observations;
  Alcotest.(check (float 0.)) "untouched min is +inf" infinity st00.Rt.min_mag;
  Alcotest.(check int) "total across tiles" 9 (Rt.observations t)

let test_tracker_exponent_buckets () =
  let t = Rt.create ~nt:1 in
  (* 2^eu ≤ |x| < 2^(eu+1): 1.0 and 1.5 land in bucket 0, 0.25 in -2. *)
  List.iter (Rt.observe_value t ~i:0 ~j:0) [ 1.0; 1.5; 0.25; 8.0 ];
  let st = Rt.stats t 0 0 in
  Alcotest.(check (list (pair int int)))
    "buckets" [ (-2, 1); (0, 2); (3, 1) ] st.Rt.exponents

let test_tracker_under_overflow_counts () =
  let t = Rt.create ~nt:1 in
  (* Against FP16 (max 65504, min subnormal 2^-24): 2^-30 certainly
     flushes, 2^17 certainly overflows, 1.0 does neither. *)
  List.iter
    (Rt.observe_value t ~i:0 ~j:0)
    [ Float.ldexp 1. (-30); 1.0; Float.ldexp 1. 17 ];
  let st = Rt.stats t 0 0 in
  Alcotest.(check int) "fp16 underflows" 1 (Rt.underflows st Fp.S_fp16);
  Alcotest.(check int) "fp16 overflows" 1 (Rt.overflows st Fp.S_fp16);
  Alcotest.(check int) "fp64 underflows" 0 (Rt.underflows st Fp.S_fp64);
  Alcotest.(check int) "fp64 overflows" 0 (Rt.overflows st Fp.S_fp64);
  (* E4M3 saturates everything above 448 and flushes below 2^-10. *)
  Alcotest.(check int) "e4m3 overflows" 1 (Rt.overflows st Fp.S_fp8_e4m3);
  Alcotest.(check int) "e4m3 underflows" 1 (Rt.underflows st Fp.S_fp8_e4m3);
  Alcotest.(check bool) "does not fit e4m3" false (Rt.fits st Fp.S_fp8_e4m3);
  Alcotest.(check bool) "fits fp64" true (Rt.fits st Fp.S_fp64)

let test_tracker_fits_margin () =
  let t = Rt.create ~nt:1 in
  (* 1.0 and 448 both fit E4M3 exactly; a strict margin pushes the floor
     up past 1.0 only when margin · 2^-9 > 1. *)
  List.iter (Rt.observe_value t ~i:0 ~j:0) [ 1.0; 448. ];
  let st = Rt.stats t 0 0 in
  Alcotest.(check bool) "fits at margin 1" true (Rt.fits st Fp.S_fp8_e4m3);
  Alcotest.(check bool) "fits at the normal floor" true
    (Rt.fits ~margin:(0.5 /. Fp.scalar_unit_roundoff Fp.S_fp8_e4m3) st Fp.S_fp8_e4m3);
  Alcotest.(check bool) "margin can exclude" false
    (Rt.fits ~margin:(Float.ldexp 1. 10) st Fp.S_fp8_e4m3);
  Alcotest.(check bool) "449 would saturate" false
    (let t' = Rt.create ~nt:1 in
     Rt.observe_value t' ~i:0 ~j:0 449.;
     Rt.fits (Rt.stats t' 0 0) Fp.S_fp8_e4m3)

let prop_tracker_accounting =
  QCheck.Test.make ~count:200 ~name:"tracker accounting: hist + zeros + nonfinite = total"
    QCheck.(
      list_of_size Gen.(int_range 0 64)
        (oneof
           [
             float;
             always 0.;
             always nan;
             always infinity;
             float_range (-1e-300) 1e-300;
           ]))
    (fun xs ->
      let t = Rt.create ~nt:1 in
      List.iter (Rt.observe_value t ~i:0 ~j:0) xs;
      let st = Rt.stats t 0 0 in
      st.Rt.observations = List.length xs
      && hist_total st + st.Rt.zeros + st.Rt.nonfinite = st.Rt.observations
      && (st.Rt.min_mag <= st.Rt.max_mag || st.Rt.min_mag = infinity))

let test_tracker_input_norms () =
  let nt = 3 and nb = 4 in
  let a = Tiled.init ~n:(nt * nb) ~nb (Pe.synthetic_element ~seed:11) in
  let t = Rt.create ~nt in
  Rt.observe_tiled t a;
  Alcotest.(check (float 1e-12))
    "tile norm matches Tiled.tile_frobenius on the diagonal"
    (Tiled.tile_frobenius a 1 1) (Rt.input_tile_norm t 1 1);
  Alcotest.(check bool) "global norm positive" true (Rt.input_norm t > 0.);
  (* ‖A‖² over stored tiles ≥ any single tile's mass. *)
  Alcotest.(check bool) "global >= tile" true
    (Rt.input_norm t >= Rt.input_tile_norm t 2 0)

(* --- pilot non-interference ------------------------------------------- *)

let tiles_bit_identical a b =
  let ok = ref true in
  Tiled.iter_lower a (fun ~i ~j m ->
      let m' = Tiled.tile b i j in
      for r = 0 to Mat.rows m - 1 do
        for c = 0 to Mat.cols m - 1 do
          if
            Int64.bits_of_float (Mat.get m r c)
            <> Int64.bits_of_float (Mat.get m' r c)
          then ok := false
        done
      done);
  !ok

let test_pilot_leaves_factorization_bit_identical () =
  let nt = 4 and nb = 8 in
  let a = Tiled.init ~n:(nt * nb) ~nb (Pe.synthetic_element ~seed:42) in
  let pmap = Pm.of_tiled ~u_req:1e-8 a in
  let plain = Tiled.copy a and observed = Tiled.copy a in
  Mp.factorize ~pmap plain;
  let tracker = Rt.create ~nt in
  Mp.factorize ~observe:(Rt.hook tracker) ~pmap observed;
  Alcotest.(check bool) "observation is read-only" true
    (tiles_bit_identical plain observed);
  Alcotest.(check bool) "tracker saw every task output" true
    (Rt.observations tracker > 0)

let test_dtd_observe_hook () =
  let mats = [| Mat.init ~rows:2 ~cols:2 (fun _ _ -> 1.5); Mat.create ~rows:2 ~cols:2 |] in
  let g = Dtd.create () in
  ignore
    (Dtd.insert g ~name:"w0" ~reads:[] ~writes:[ 0 ] (fun () ->
         Mat.set mats.(0) 0 0 2.0));
  ignore
    (Dtd.insert g ~name:"w1" ~reads:[ 0 ] ~writes:[ 1 ] (fun () ->
         Mat.set mats.(1) 1 1 (Mat.get mats.(0) 0 0)));
  let seen = ref [] in
  Dtd.execute
    ~datum_mat:(fun k -> if k < 2 then Some mats.(k) else None)
    ~observe:(fun ~key m -> seen := (key, Mat.get m 0 0) :: !seen)
    g;
  (* One observation per written datum, carrying post-task tile state. *)
  Alcotest.(check (list (pair int (float 0.))))
    "observed writes in order" [ (0, 2.0); (1, 0.) ] (List.rev !seen)

(* --- Type_advisor ------------------------------------------------------ *)

let advise_for ~seed ~nt ~nb ~u_req =
  let a = Tiled.init ~n:(nt * nb) ~nb (Pe.synthetic_element ~seed) in
  let pmap = Pm.of_tiled ~u_req a in
  let tracker = Rt.create ~nt in
  Rt.observe_tiled tracker a;
  let pilot = Tiled.copy a in
  Mp.factorize ~observe:(Rt.hook tracker) ~pmap pilot;
  (a, pmap, Ta.advise ~u_req ~ranges:tracker ~pmap ())

let test_advisor_never_widens () =
  let _, pmap, adv = advise_for ~seed:42 ~nt:6 ~nb:8 ~u_req:1e-2 in
  let nt = Pm.nt pmap in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      let base = Cm.shipped adv.Ta.base pmap i j
      and advised = Cm.shipped adv.Ta.cmap pmap i j in
      Alcotest.(check bool)
        (Printf.sprintf "tile (%d,%d) never widens" i j)
        true
        (Fp.scalar_bytes advised <= Fp.scalar_bytes base)
    done
  done

let test_advisor_demotions_admissible () =
  let _, _, adv = advise_for ~seed:42 ~nt:6 ~nb:8 ~u_req:1e-2 in
  Alcotest.(check bool) "some demotion at a loose target" true (Ta.demoted adv > 0);
  List.iter
    (fun d ->
      Alcotest.(check bool) "strictly narrower" true
        (Fp.scalar_bytes d.Ta.advised_comm < Fp.scalar_bytes d.Ta.base_comm);
      Alcotest.(check bool) "norm rule honored" true
        (d.Ta.ratio *. Fp.scalar_unit_roundoff d.Ta.advised_comm <= 1e-2))
    adv.Ta.demotions;
  Alcotest.(check bool) "fp8 count bounded by demotions" true
    (Ta.fp8_tiles adv <= Ta.demoted adv)

let test_advisor_tight_target_demotes_nothing () =
  let _, _, adv = advise_for ~seed:42 ~nt:4 ~nb:8 ~u_req:1e-14 in
  Alcotest.(check int) "no demotion at fp64 accuracy" 0 (Ta.demoted adv);
  Alcotest.(check bool) "cmap equals base" true (Cm.equal adv.Ta.base adv.Ta.cmap)

let test_advisor_requires_primed_tracker () =
  let nt = 2 and nb = 4 in
  let a = Tiled.init ~n:(nt * nb) ~nb (Pe.synthetic_element ~seed:1) in
  let pmap = Pm.of_tiled ~u_req:1e-4 a in
  let tracker = Rt.create ~nt in
  Alcotest.check_raises "un-primed tracker rejected"
    (Invalid_argument
       "Type_advisor.advise: tracker holds no input mass — observe_tiled the pilot \
        matrix before advising")
    (fun () -> ignore (Ta.advise ~u_req:1e-4 ~ranges:tracker ~pmap ()))

let test_advisor_chain_respected () =
  (* Restricting the chain to FP16 forbids both FP8s. *)
  let nt = 6 and nb = 8 in
  let a = Tiled.init ~n:(nt * nb) ~nb (Pe.synthetic_element ~seed:42) in
  let pmap = Pm.of_tiled ~u_req:1e-2 a in
  let tracker = Rt.create ~nt in
  Rt.observe_tiled tracker a;
  let pilot = Tiled.copy a in
  Mp.factorize ~observe:(Rt.hook tracker) ~pmap pilot;
  let adv = Ta.advise ~chain:[ Fp.S_fp16 ] ~u_req:1e-2 ~ranges:tracker ~pmap () in
  Alcotest.(check int) "no fp8 outside the chain" 0 (Ta.fp8_tiles adv);
  List.iter
    (fun d -> Alcotest.check scalar "fp16 only" Fp.S_fp16 d.Ta.advised_comm)
    adv.Ta.demotions

(* --- differential oracle ----------------------------------------------- *)

let test_differential_oracle_across_seeds () =
  (* The measured residual of a factorization under the advised map must
     satisfy the Higham–Mary bound for every (seed, NT) — the FP64 oracle
     differential the issue's acceptance criteria pin. *)
  List.iter
    (fun (seed, nt) ->
      let f =
        Pe.sweep ~targets:[ 1e-2; 1e-6; 1e-10 ] ~nt ~nb:8 ~seed ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d nt %d within bound" seed nt)
        true (Pe.all_within_bound f))
    [ (1, 4); (7, 4); (42, 6); (1234, 5) ]

let test_frontier_shape () =
  let f = Pe.sweep ~nt:8 ~nb:16 ~seed:42 () in
  Alcotest.(check int) "six default targets" 6 (List.length f.Pe.points);
  Alcotest.(check bool) "pareto subset nonempty" true (List.length f.Pe.pareto > 0);
  Alcotest.(check bool) "pareto is a subset" true
    (List.for_all (fun p -> List.memq p f.Pe.points) f.Pe.pareto);
  (* Loosest-first ordering. *)
  let targets = List.map (fun p -> p.Pe.target) f.Pe.points in
  Alcotest.(check (list (float 0.)))
    "targets sorted loosest first"
    (List.sort (fun a b -> compare b a) targets)
    targets;
  Alcotest.(check bool) "acceptance: an fp8 motion win exists" true
    (Pe.fp8_motion_win f);
  List.iter
    (fun p ->
      Alcotest.(check bool) "stc <= fp64 bytes" true (p.Pe.bytes_stc <= p.Pe.bytes_fp64);
      Alcotest.(check bool) "advised stc <= norm-rule stc" true
        (p.Pe.bytes_stc <= p.Pe.bytes_stc_norm))
    f.Pe.points

let test_frontier_deterministic () =
  let f1 = Pe.sweep ~nt:4 ~nb:8 ~seed:42 ()
  and f2 = Pe.sweep ~nt:4 ~nb:8 ~seed:42 ()
  and f3 = Pe.sweep ~nt:4 ~nb:8 ~seed:43 () in
  Alcotest.(check string)
    "same seed, byte-identical JSON" (Pe.to_json_string f1) (Pe.to_json_string f2);
  Alcotest.(check bool) "different seed, different JSON" true
    (Pe.to_json_string f1 <> Pe.to_json_string f3)

let test_pareto_front_nondominated () =
  let f = Pe.sweep ~nt:4 ~nb:8 ~seed:7 () in
  List.iter
    (fun p ->
      Alcotest.(check bool) "no point dominates a front member" true
        (not
           (List.exists
              (fun q ->
                q != p
                && q.Pe.bytes_stc <= p.Pe.bytes_stc
                && q.Pe.residual <= p.Pe.residual
                && (q.Pe.bytes_stc < p.Pe.bytes_stc || q.Pe.residual < p.Pe.residual))
              f.Pe.points)))
    f.Pe.pareto

let test_markdown_render () =
  let f = Pe.sweep ~targets:[ 1e-2; 1e-8 ] ~nt:4 ~nb:8 ~seed:42 () in
  let md = Pe.to_markdown f in
  Alcotest.(check bool) "has section header" true
    (contains ~needle:"Autotune Pareto frontier" md);
  Alcotest.(check bool) "has a table row per point" true
    (contains ~needle:"1e-02" md || contains ~needle:"1e-2" md)

let () =
  Alcotest.run "autotune"
    [
      ( "range tracker",
        [
          Alcotest.test_case "accounting invariants" `Quick test_tracker_invariants;
          Alcotest.test_case "exponent buckets" `Quick test_tracker_exponent_buckets;
          Alcotest.test_case "under/overflow counts" `Quick
            test_tracker_under_overflow_counts;
          Alcotest.test_case "fits with margin" `Quick test_tracker_fits_margin;
          Alcotest.test_case "input norms" `Quick test_tracker_input_norms;
          QCheck_alcotest.to_alcotest prop_tracker_accounting;
        ] );
      ( "pilot",
        [
          Alcotest.test_case "observation leaves tiles bit-identical" `Quick
            test_pilot_leaves_factorization_bit_identical;
          Alcotest.test_case "dtd observe hook" `Quick test_dtd_observe_hook;
        ] );
      ( "type advisor",
        [
          Alcotest.test_case "never widens" `Quick test_advisor_never_widens;
          Alcotest.test_case "demotions admissible" `Quick
            test_advisor_demotions_admissible;
          Alcotest.test_case "tight target demotes nothing" `Quick
            test_advisor_tight_target_demotes_nothing;
          Alcotest.test_case "requires primed tracker" `Quick
            test_advisor_requires_primed_tracker;
          Alcotest.test_case "chain respected" `Quick test_advisor_chain_respected;
        ] );
      ( "pareto explorer",
        [
          Alcotest.test_case "differential oracle across seeds" `Quick
            test_differential_oracle_across_seeds;
          Alcotest.test_case "frontier shape and acceptance" `Quick test_frontier_shape;
          Alcotest.test_case "deterministic JSON" `Quick test_frontier_deterministic;
          Alcotest.test_case "pareto front non-dominated" `Quick
            test_pareto_front_nondominated;
          Alcotest.test_case "markdown render" `Quick test_markdown_render;
        ] );
    ]
