(* Prometheus exposition validator, the CI trace-smoke gate: read one
   scrape from a file (or stdin with "-"), run it through the
   {!Geomix_obs.Expo} linter and parser, and exit non-zero on any
   diagnostic.  Kept out of the alcotest suites so CI can point it at an
   artifact produced by a live server run. *)

module Expo = Geomix_obs.Expo

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
      prerr_endline "usage: check_prom.exe FILE  (\"-\" reads stdin)";
      exit 2
  in
  let body =
    if path = "-" then read_all stdin
    else begin
      let ic = try open_in path with Sys_error m -> prerr_endline m; exit 2 in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_all ic)
    end
  in
  if String.trim body = "" then begin
    Printf.eprintf "%s: empty exposition\n" path;
    exit 1
  end;
  match Expo.lint body with
  | [] -> (
    match Expo.parse body with
    | Ok samples ->
      Printf.printf "%s: OK (%d samples)\n" path (List.length samples);
      exit 0
    | Error m ->
      Printf.eprintf "%s: parse error: %s\n" path m;
      exit 1)
  | diags ->
    List.iter (fun d -> Printf.eprintf "%s: %s\n" path d) diags;
    exit 1
