(* ABFT tile integrity: checksum discrimination (lawful precision
   conversion passes the fingerprint a flipped high-order bit fails),
   Guard stamp/verify/restore/derive semantics, raw-edge detection and
   recovery through Dtd.execute, the guarantee that a guarded fault-free
   factorization is bitwise identical to an unguarded one, and the
   acceptance property: with seeded silent data corruption armed, nothing
   ever escapes the guard silently. *)

module Checksum = Geomix_integrity.Checksum
module Guard = Geomix_integrity.Guard
module Mat = Geomix_linalg.Mat
module Tiled = Geomix_tile.Tiled
module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Chol = Geomix_core.Mp_cholesky
module Fault = Geomix_fault.Fault
module Retry = Geomix_fault.Retry
module Metrics = Geomix_obs.Metrics
module Pool = Geomix_parallel.Pool
module Dtd = Geomix_runtime.Dtd

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xAB47 |]) t

let tile rows cols =
  Mat.init ~rows ~cols (fun i j ->
    sin (float_of_int ((i * 31) + j)) +. (0.5 /. float_of_int (i + j + 1)))

(* Flip one bit of element [idx] (column-major) in place. *)
let flip_bit m ~bit ~idx =
  let rows = Mat.rows m in
  let i = idx mod rows and j = idx / rows in
  let bits = Int64.bits_of_float (Mat.get m i j) in
  Mat.set m i j
    (Int64.float_of_bits (Int64.logxor bits (Int64.shift_left 1L bit)))

(* Checksum *)

let test_checksum_exact () =
  let m = tile 7 5 in
  let cs = Checksum.stamp m in
  Alcotest.(check int) "bytes covered" (8 * 7 * 5) (Checksum.bytes cs);
  Alcotest.(check bool) "copy matches" true (Checksum.matches cs (Mat.copy m));
  let low = Mat.copy m in
  flip_bit low ~bit:0 ~idx:17;
  Alcotest.(check bool) "one low mantissa bit fails" false
    (Checksum.matches cs low);
  Alcotest.(check bool) "dimension mismatch fails" false
    (Checksum.matches cs (tile 5 7))

let test_checksum_tolerates_conversion () =
  let m = tile 8 8 in
  List.iter
    (fun scalar ->
      let stored = Mat.rounded scalar m in
      let cs = Checksum.stamp m in
      Alcotest.(check bool)
        (Printf.sprintf "rounding to %s passes" (Fp.scalar_name scalar))
        true
        (Checksum.matches_scalar cs ~scalar stored);
      (* The same hop with one exponent-region bit flipped must fail: the
         norm moves by O(|a_ij|), far beyond u_low·‖A‖_F. *)
      let bad = Mat.copy stored in
      flip_bit bad ~bit:62 ~idx:3;
      Alcotest.(check bool)
        (Printf.sprintf "high-bit flip after %s rounding fails"
           (Fp.scalar_name scalar))
        false
        (Checksum.matches_scalar cs ~scalar bad))
    [ Fp.S_fp32; Fp.S_bf16; Fp.S_fp16; Fp.S_fp8_e4m3; Fp.S_fp8_e5m2 ]

let test_checksum_fp64_hop_is_exact () =
  (* The identity conversion degrades to the exact discipline: even a
     norm-invisible low-bit flip fails. *)
  let m = tile 6 6 in
  let cs = Checksum.stamp m in
  let bad = Mat.copy m in
  flip_bit bad ~bit:0 ~idx:0;
  Alcotest.(check bool) "S_fp64 hop rejects low-bit flip" false
    (Checksum.matches_scalar cs ~scalar:Fp.S_fp64 bad)

let test_checksum_nonfinite_fails () =
  let m = tile 4 4 in
  let cs = Checksum.stamp m in
  let bad = Mat.copy m in
  Mat.set bad 1 2 Float.nan;
  Alcotest.(check bool) "NaN in transit fails the fingerprint" false
    (Checksum.matches_converted
       ~u_low:(Fp.scalar_unit_roundoff Fp.S_fp16)
       cs bad)

(* Guard *)

let test_guard_stamp_verify_restore () =
  let reg = Metrics.create () in
  let g = Guard.create ~obs:reg ~snapshots:true () in
  let m = tile 5 5 in
  Alcotest.(check bool) "unstamped data is trusted" true (Guard.check g ~key:0 m);
  Guard.stamp g ~key:0 m;
  Guard.verify g ~key:0 ~task:"t" m;
  flip_bit m ~bit:51 ~idx:7;
  Alcotest.(check bool) "corruption detected" false (Guard.check g ~key:0 m);
  Guard.note_detected g ~key:0 ~task:"t";
  Alcotest.(check bool) "snapshot repairs in place" true (Guard.restore g ~key:0 m);
  Guard.verify g ~key:0 ~task:"t" m;
  Guard.note_recovered g ~key:0 ~task:"t";
  Alcotest.(check int) "detected" 1 (Guard.detected g);
  Alcotest.(check int) "recovered" 1 (Guard.recovered g);
  Alcotest.(check int) "no unrecovered violations" 0 (Guard.violations g);
  (* verify on a mismatch raises, and counts the violation. *)
  flip_bit m ~bit:51 ~idx:7;
  (match Guard.verify g ~key:0 ~task:"boom" m with
  | () -> Alcotest.fail "verify accepted corrupted tile"
  | exception Guard.Corrupt v ->
    Alcotest.(check int) "violation key" 0 v.Guard.key;
    Alcotest.(check string) "violation task" "boom" v.Guard.task);
  Alcotest.(check int) "violation counted" 1 (Guard.violations g)

let test_guard_no_snapshots_cannot_restore () =
  let g = Guard.create () in
  let m = tile 3 3 in
  Guard.stamp g ~key:4 m;
  Alcotest.(check bool) "restore without snapshots" false (Guard.restore g ~key:4 m)

let test_guard_derive () =
  let g = Guard.create () in
  let m = tile 6 6 in
  Guard.stamp g ~key:0 m;
  let stored = Mat.rounded Fp.S_fp16 m in
  Guard.derive g ~from_key:0 ~key:1 ~scalar:Fp.S_fp16 ~task:"publish" stored;
  Guard.verify g ~key:1 ~task:"read" stored;
  (* A corrupted conversion result must be refused — the far side of a
     hop has no snapshot to restore from. *)
  let bad = Mat.copy stored in
  flip_bit bad ~bit:60 ~idx:5;
  Alcotest.check_raises "corrupted hop raises"
    (Guard.Corrupt
       { Guard.key = 2; task = "publish2";
         reason = "conversion fingerprint out of tolerance (to FP16)" })
    (fun () ->
      Guard.derive g ~from_key:0 ~key:2 ~scalar:Fp.S_fp16 ~task:"publish2" bad)

let test_guard_reset_keeps_counters () =
  let g = Guard.create ~snapshots:true () in
  let m = tile 4 4 in
  Guard.stamp g ~key:9 m;
  let before = Guard.stamped g in
  Guard.reset g;
  Alcotest.(check bool) "stamp forgotten" true (Guard.find g ~key:9 = None);
  Alcotest.(check bool) "unstamped again trusted" true (Guard.check g ~key:9 m);
  Alcotest.(check int) "counters survive reset" before (Guard.stamped g)

(* Dtd raw edges *)

(* A three-task program: a producer writes datum 1, a saboteur (ordered
   after the producer by its declared read) corrupts the payload in
   transit, and a consumer reads it.  The consumer-side verification must
   detect the damage and — with snapshots — repair it before the body
   runs. *)
let dtd_sabotage ~snapshots =
  let payload = tile 6 6 in
  let clean = Mat.copy payload in
  let g = Dtd.create () in
  ignore (Dtd.insert g ~name:"produce" ~reads:[] ~writes:[ 1 ] (fun () -> ()));
  ignore
    (Dtd.insert g ~name:"sabotage" ~reads:[ 1 ] ~writes:[ 2 ] (fun () ->
       flip_bit payload ~bit:40 ~idx:11));
  let seen_clean = ref false in
  ignore
    (Dtd.insert g ~name:"consume" ~reads:[ 1; 2 ] ~writes:[] (fun () ->
       seen_clean := Mat.rel_diff payload ~reference:clean = 0.));
  let guard = Guard.create ~snapshots () in
  Dtd.execute ~integrity:guard
    ~datum_mat:(fun key -> if key = 1 then Some payload else None)
    g;
  (guard, !seen_clean)

let test_dtd_raw_edge_recovery () =
  let guard, seen_clean = dtd_sabotage ~snapshots:true in
  Alcotest.(check bool) "consumer saw repaired payload" true seen_clean;
  Alcotest.(check int) "detected" 1 (Guard.detected guard);
  Alcotest.(check int) "recovered" 1 (Guard.recovered guard);
  Alcotest.(check int) "no violations" 0 (Guard.violations guard)

let test_dtd_raw_edge_unrecoverable () =
  match dtd_sabotage ~snapshots:false with
  | _ -> Alcotest.fail "corrupted raw edge executed"
  | exception Guard.Corrupt v ->
    Alcotest.(check string) "reason" "raw-edge payload corrupted" v.Guard.reason

(* Guarded factorization *)

let spd ~nt ~nb =
  Tiled.init ~n:(nt * nb) ~nb (fun i j ->
    (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))

let test_guarded_factorization_bitwise () =
  (* With faults disabled, the guard must be a pure observer: guarded and
     unguarded factors agree bit for bit, under both transfer strategies. *)
  let nt = 4 and nb = 8 in
  let pmap = Pm.two_level ~nt ~off_diag:Fp.Fp16_32 in
  List.iter
    (fun strategy ->
      let options = { Chol.default_options with Chol.strategy } in
      let reference = spd ~nt ~nb in
      Chol.factorize ~options ~pmap reference;
      let a = spd ~nt ~nb in
      let g = Guard.create ~snapshots:true () in
      Chol.factorize ~options ~integrity:g ~pmap a;
      Alcotest.(check (float 0.)) "bitwise identical" 0.
        (Tiled.rel_diff a ~reference);
      Alcotest.(check bool) "guard actually verified" true (Guard.verified g > 0);
      Alcotest.(check int) "nothing detected" 0 (Guard.detected g))
    [ Chol.Automatic; Chol.Always_ttc ]

(* An Algorithm 2 map with every off-diagonal broadcast forced down to
   FP8-E5M2 wherever that narrows the wire — the autotuner's override
   entry point, exercised here so the SDC property also covers FP8
   transfer fingerprints. *)
let fp8_cmap pmap =
  Cm.override (Cm.compute pmap) pmap ~f:(fun i j ->
    if i <> j then Some Fp.S_fp8_e5m2 else None)

let test_fp8_cmap_guard_pure_observer () =
  (* Fault-free, FP8 on the wire: the guard's conversion-tolerant
     fingerprints must accept every E5M2 hop (unit roundoff 2^-3) and the
     guarded run must stay bitwise identical to the unguarded one. *)
  let nt = 4 and nb = 8 in
  let pmap = Pm.two_level ~nt ~off_diag:Fp.Fp16_32 in
  let cmap = fp8_cmap pmap in
  let reference = spd ~nt ~nb in
  Chol.factorize ~cmap ~pmap reference;
  let a = spd ~nt ~nb in
  let g = Guard.create ~snapshots:true () in
  Chol.factorize ~cmap ~integrity:g ~pmap a;
  Alcotest.(check (float 0.)) "bitwise identical" 0. (Tiled.rel_diff a ~reference);
  Alcotest.(check bool) "guard actually verified" true (Guard.verified g > 0);
  Alcotest.(check int) "nothing detected" 0 (Guard.detected g);
  (* And FP8 genuinely changed the wire: the reference differs from a
     factorization under Algorithm 2's own map. *)
  let plain = spd ~nt ~nb in
  Chol.factorize ~pmap plain;
  Alcotest.(check bool) "fp8 transfers perturb the factor" true
    (Tiled.rel_diff plain ~reference > 0.)

(* Acceptance property: across seeds, tile counts and precision maps —
   including FP8-E5M2 transfer overrides — a factorization under silent
   data corruption (plus the ordinary exec faults, so SDC interacts with
   retry/rollback) either recovers to the bitwise fault-free factor with
   detected = recovered, or surfaces Guard.Corrupt — an injected
   corruption never escapes silently. *)
let prop_sdc_never_escapes =
  QCheck.Test.make ~count:60 ~name:"armed SDC never escapes the guard"
    QCheck.(triple (int_range 0 999) (int_range 2 5) (int_range 0 3))
    (fun (seed, nt, which_pmap) ->
      let nb = 8 in
      let pmap =
        match which_pmap with
        | 0 | 3 -> Pm.two_level ~nt ~off_diag:Fp.Fp16_32
        | 1 -> Pm.two_level ~nt ~off_diag:Fp.Bf16_32
        | _ -> Pm.uniform ~nt Fp.Fp32
      in
      let cmap = if which_pmap = 3 then Some (fp8_cmap pmap) else None in
      let reference = spd ~nt ~nb in
      Chol.factorize ?cmap ~pmap reference;
      let a = spd ~nt ~nb in
      let faults =
        Fault.plan ~rate:0.4
          ~kinds:[ Fault.Transient; Fault.Crash_after_write; Fault.Sdc ]
          ~sleep:ignore ~seed ()
      in
      let g = Guard.create ~snapshots:true () in
      match
        Pool.with_pool ~num_workers:0 (fun pool ->
          Chol.factorize ~pool ?cmap ~faults ~retry:(Retry.immediate ())
            ~integrity:g ~pmap a)
      with
      | () ->
        Tiled.rel_diff a ~reference = 0.
        && Guard.detected g = Guard.recovered g
        && Guard.violations g = 0
      | exception Guard.Corrupt _ -> true)

let () =
  Alcotest.run "integrity"
    [
      ( "checksum",
        [
          Alcotest.test_case "exact hash" `Quick test_checksum_exact;
          Alcotest.test_case "conversion tolerance" `Quick
            test_checksum_tolerates_conversion;
          Alcotest.test_case "fp64 hop is exact" `Quick
            test_checksum_fp64_hop_is_exact;
          Alcotest.test_case "non-finite fails" `Quick test_checksum_nonfinite_fails;
        ] );
      ( "guard",
        [
          Alcotest.test_case "stamp/verify/restore" `Quick
            test_guard_stamp_verify_restore;
          Alcotest.test_case "no snapshots, no restore" `Quick
            test_guard_no_snapshots_cannot_restore;
          Alcotest.test_case "derive across conversion" `Quick test_guard_derive;
          Alcotest.test_case "reset keeps counters" `Quick
            test_guard_reset_keeps_counters;
        ] );
      ( "dtd raw edges",
        [
          Alcotest.test_case "detect and repair" `Quick test_dtd_raw_edge_recovery;
          Alcotest.test_case "unrecoverable raises" `Quick
            test_dtd_raw_edge_unrecoverable;
        ] );
      ( "guarded cholesky",
        [
          Alcotest.test_case "fault-free guard is a pure observer" `Quick
            test_guarded_factorization_bitwise;
          Alcotest.test_case "fp8 transfers under guard" `Quick
            test_fp8_cmap_guard_pure_observer;
          qtest prop_sdc_never_escapes;
        ] );
    ]
