(* The model service: protocol codecs and framing, admission control,
   deadlines on the virtual clock, the single-flight shape cache (including
   an interleaving replay through the verify explorer), the cache-hit
   bitwise-identity property, Monte-Carlo progress streaming, and a small
   end-to-end pass over the Unix-domain-socket front end. *)

module J = Geomix_obs.Jsonlite
module P = Geomix_serve.Protocol
module Cache = Geomix_serve.Cache
module Server = Geomix_serve.Server
module Breaker = Geomix_serve.Breaker
module Pool = Geomix_parallel.Pool
module Explore = Geomix_verify.Explore
module Fault = Geomix_fault.Fault
module Retry = Geomix_fault.Retry
module Covariance = Geomix_geostat.Covariance

(* [compare = 0] instead of [(=)]: Indefinite replies carry nan fields, and
   nan <> nan structurally while [compare nan nan = 0]. *)
let same a b = Stdlib.compare a b = 0

let spec ?(n = 48) ?(nb = 16) ?(u_req = 1e-6) ?(family = Covariance.Sqexp)
    ?(beta = 0.1) ?(locs_seed = 42) ?(data_seed = 1) () =
  {
    P.n;
    nb;
    u_req;
    family;
    sigma2 = 1.0;
    beta;
    nu = 0.5;
    nugget = Covariance.default_nugget;
    locs_seed;
    data_seed;
  }

let request ?(id = "r1") ?(priority = P.Normal) ?timeout_s payload =
  { P.id; priority; timeout_s; payload }

let with_server ?now ?(max_inflight = 4) ?(queue_capacity = 16)
    ?(cache_capacity = 32) ?faults ?retry ?integrity ?drain_deadline_s
    ?breaker_config f =
  let pool = Pool.create ~num_workers:0 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      f
        (Server.create ?now ~max_inflight ~queue_capacity ~cache_capacity
           ?faults ?retry ?integrity ?drain_deadline_s ?breaker_config ~pool ()))

(* {2 Protocol codecs} *)

let roundtrip_request req =
  match P.request_of_json (P.request_to_json req) with
  | Ok req' -> Alcotest.(check bool) "request round-trip" true (same req req')
  | Error m -> Alcotest.failf "decode failed: %s" m

let test_request_roundtrip () =
  List.iter roundtrip_request
    [
      request P.Ping;
      request ~id:"x" ~priority:P.High ~timeout_s:0.25 (P.Likelihood (spec ()));
      request ~priority:P.Low
        (P.Likelihood (spec ~family:Covariance.Matern ~beta:0.3 ()));
      request (P.Predict { spec = spec (); n_new = 7; pred_seed = 9 });
      request (P.Mc_batch { spec = spec ~family:Covariance.Powexp (); replicates = 12 });
      request P.Health;
      request P.Shutdown;
    ]

let roundtrip_frame frame =
  match P.frame_of_json (P.frame_to_json frame) with
  | Ok frame' -> Alcotest.(check bool) "frame round-trip" true (same frame frame')
  | Error m -> Alcotest.failf "decode failed: %s" m

let test_frame_roundtrip () =
  let reply r = P.Reply { id = "id-1"; reply = r; footer = None } in
  List.iter roundtrip_frame
    [
      P.Progress { id = "mc"; completed = 3; total = 8 };
      reply P.Pong;
      reply
        (P.Likelihood_r
           {
             loglik = -61.25;
             log_det = 3.5;
             quad_form = 12.0;
             status = P.Clean;
             cache_hit = true;
           });
      reply
        (P.Likelihood_r
           {
             loglik = -1.5;
             log_det = 0.25;
             quad_form = 2.0;
             status = P.Escalated 2;
             cache_hit = false;
           });
      (* Indefinite: -inf / nan cross JSON as null; the status field is
         authoritative and the decoder reconstructs the canonical values. *)
      reply
        (P.Likelihood_r
           {
             loglik = neg_infinity;
             log_det = nan;
             quad_form = nan;
             status = P.Indefinite;
             cache_hit = false;
           });
      reply
        (P.Likelihood_r
           {
             loglik = -2.0;
             log_det = 1.0;
             quad_form = 3.0;
             status = P.Corrupt_recovered 3;
             cache_hit = false;
           });
      reply
        (P.Health_r
           {
             inflight = 1;
             queued = 2;
             served = 30;
             draining = false;
             brownout = true;
             cache_hits = 4;
             cache_misses = 5;
             cache_evictions = 6;
             recovered = 7;
             escalated = 8;
             shed = 9;
           });
      reply
        (P.Predict_r
           { mean = [| 0.5; -1.25 |]; variance = [| 0.1; 0.2 |]; cache_hit = true });
      reply
        (P.Mc_r
           {
             logliks = [| -1.0; neg_infinity; -3.0 |];
             mean_loglik = neg_infinity;
             status = P.Indefinite;
             cache_hit = true;
           });
      reply P.Shutdown_r;
      reply (P.Error_r { code = P.Saturated; message = "busy" });
      reply (P.Error_r { code = P.Deadline_exceeded; message = "late" });
      reply (P.Error_r { code = P.Bad_request; message = "nope" });
      reply (P.Error_r { code = P.Internal; message = "boom" });
    ]

let test_reject_malformed () =
  let bad json =
    match P.request_of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "malformed request decoded"
  in
  bad (J.Str "nope");
  bad (J.Obj [ ("id", J.Str "x") ]);
  bad (J.Obj [ ("id", J.Str "x"); ("op", J.Str "unknown-op") ])

let qcheck_spec_gen =
  QCheck.Gen.(
    let* n = int_range 1 96 in
    let* nb = int_range 1 n in
    let* u_req = oneofl [ 1e-8; 1e-6; 1e-4; 1e-2 ] in
    let* family =
      oneofl
        [ Covariance.Sqexp; Covariance.Matern; Covariance.Powexp; Covariance.Spherical ]
    in
    let* sigma2 = float_range 0.1 4.0 in
    let* beta = float_range 0.05 0.5 in
    let* nu = float_range 0.5 1.5 in
    let* locs_seed = int_range 0 1000 in
    let* data_seed = int_range 0 1000 in
    return
      {
        P.n;
        nb;
        u_req;
        family;
        sigma2;
        beta;
        nu;
        nugget = Covariance.default_nugget;
        locs_seed;
        data_seed;
      })

let qcheck_request_gen =
  QCheck.Gen.(
    let* s = qcheck_spec_gen in
    let* priority = oneofl [ P.High; P.Normal; P.Low ] in
    let* timeout_s = oneofl [ None; Some 0.5; Some 30.0 ] in
    let* payload =
      oneof
        [
          return P.Ping;
          return (P.Likelihood s);
          (let* n_new = int_range 1 16 in
           let* pred_seed = int_range 0 100 in
           return (P.Predict { spec = s; n_new; pred_seed }));
          (let* replicates = int_range 1 32 in
           return (P.Mc_batch { spec = s; replicates }));
        ]
    in
    let* id = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
    return { P.id; priority; timeout_s; payload })

let prop_request_roundtrip =
  QCheck.Test.make ~count:200 ~name:"request codec round-trips"
    (QCheck.make qcheck_request_gen) (fun req ->
      match P.request_of_json (P.request_to_json req) with
      | Ok req' -> same req req'
      | Error _ -> false)

(* {2 Framing} *)

let with_pipe f =
  let r, w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr r in
  let oc = Unix.out_channel_of_descr w in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      close_in_noerr ic)
    (fun () -> f ic oc)

let test_framing_roundtrip () =
  with_pipe (fun ic oc ->
      let json = P.request_to_json (request ~timeout_s:1.5 (P.Likelihood (spec ()))) in
      P.write_frame oc json;
      P.write_frame oc (J.Obj [ ("k", J.Num 7.) ]);
      (match P.read_frame ic with
      | Ok j -> Alcotest.(check bool) "first frame" true (same json j)
      | Error m -> Alcotest.failf "read failed: %s" m);
      match P.read_frame ic with
      | Ok j -> Alcotest.(check bool) "second frame" true (same (J.Obj [ ("k", J.Num 7.) ]) j)
      | Error m -> Alcotest.failf "read failed: %s" m)

let test_framing_eof_and_oversize () =
  with_pipe (fun ic oc ->
      close_out oc;
      match P.read_frame ic with
      | Error "eof" -> ()
      | Error m -> Alcotest.failf "expected eof, got %s" m
      | Ok _ -> Alcotest.fail "read from closed pipe");
  with_pipe (fun ic oc ->
      (* A connection cut after 1–3 header bytes is a framing error, not a
         clean end-of-stream. *)
      output_string oc "\x00\x00";
      close_out oc;
      match P.read_frame ic with
      | Error "truncated frame" -> ()
      | Error m -> Alcotest.failf "expected truncated frame, got %s" m
      | Ok _ -> Alcotest.fail "truncated header accepted");
  with_pipe (fun ic oc ->
      (* A header advertising more than [max_frame_bytes] must be refused
         without attempting the allocation. *)
      output_string oc "\xff\xff\xff\xff";
      flush oc;
      match P.read_frame ic with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "oversized frame accepted");
  let bytes = P.frame_to_string (J.Str "x") in
  Alcotest.(check int) "frame layout = 4-byte header + payload"
    (4 + String.length {|"x"|})
    (String.length bytes)

(* {2 Admission control} *)

let test_admission_saturation () =
  with_server ~max_inflight:1 ~queue_capacity:0 (fun srv ->
      Alcotest.(check bool) "slot granted" true (Server.admit srv ~rank:1 = `Admitted);
      Alcotest.(check int) "inflight" 1 (Server.inflight srv);
      (match Server.handle srv (request (P.Likelihood (spec ()))) with
      | P.Error_r { code = P.Saturated; _ } -> ()
      | _ -> Alcotest.fail "expected Saturated while slot and queue are full");
      Server.release srv;
      Alcotest.(check int) "released" 0 (Server.inflight srv);
      match Server.handle srv (request (P.Likelihood (spec ()))) with
      | P.Likelihood_r { status = P.Clean; _ } -> ()
      | _ -> Alcotest.fail "expected a clean likelihood after release")

let test_admission_priority_order () =
  with_server ~max_inflight:1 ~queue_capacity:4 (fun srv ->
      Alcotest.(check bool) "occupy" true (Server.admit srv ~rank:0 = `Admitted);
      let order = ref [] in
      let omutex = Mutex.create () in
      let waiter tag rank =
        Thread.create
          (fun () ->
            match Server.admit srv ~rank with
            | `Admitted ->
              Mutex.lock omutex;
              order := tag :: !order;
              Mutex.unlock omutex;
              Server.release srv
            | `Saturated -> ())
          ()
      in
      let await_queued n =
        let deadline = Unix.gettimeofday () +. 10.0 in
        while Server.queued srv < n && Unix.gettimeofday () < deadline do
          Thread.yield ()
        done;
        Alcotest.(check int) "queued" n (Server.queued srv)
      in
      (* Low enqueues first, then high: strict priority must overtake FIFO. *)
      let t_low = waiter `Low 2 in
      await_queued 1;
      let t_high = waiter `High 0 in
      await_queued 2;
      Server.release srv;
      Thread.join t_low;
      Thread.join t_high;
      Alcotest.(check bool) "high granted before low" true
        (List.rev !order = [ `High; `Low ]))

(* {2 Deadlines on the virtual clock} *)

let test_deadline_at_admission () =
  let _sleep, elapsed = Retry.virtual_clock () in
  with_server ~now:elapsed (fun srv ->
      match Server.handle srv (request ~timeout_s:(-1.0) (P.Likelihood (spec ()))) with
      | P.Error_r { code = P.Deadline_exceeded; _ } -> ()
      | _ -> Alcotest.fail "expected Deadline_exceeded at admission")

let test_deadline_mid_batch () =
  let sleep, elapsed = Retry.virtual_clock () in
  with_server ~now:elapsed (fun srv ->
      let progressed = ref 0 in
      (* The first replicate completes at t=0 and its progress callback
         advances the clock past the deadline; the per-replicate check must
         stop the rest of the batch instead of finishing late. *)
      let on_progress ~completed:_ ~total:_ =
        incr progressed;
        sleep 10.0
      in
      match
        Server.handle srv ~on_progress
          (request ~timeout_s:5.0 (P.Mc_batch { spec = spec (); replicates = 4 }))
      with
      | P.Error_r { code = P.Deadline_exceeded; _ } ->
        Alcotest.(check int) "one replicate before expiry" 1 !progressed
      | _ -> Alcotest.fail "expected Deadline_exceeded mid-batch")

(* {2 Shape cache} *)

let key ?beta ?locs_seed () = Cache.key_of_spec (spec ?beta ?locs_seed ())

let small_key i = Cache.key_of_spec (spec ~n:32 ~nb:16 ~locs_seed:i ())

let test_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let build = Server.build_artifact in
  let k1 = small_key 1 and k2 = small_key 2 and k3 = small_key 3 in
  ignore (Cache.find_or_build cache k1 ~build);
  ignore (Cache.find_or_build cache k2 ~build);
  ignore (Cache.find_or_build cache k3 ~build);
  let s = Cache.stats cache in
  Alcotest.(check int) "misses" 3 s.Cache.misses;
  Alcotest.(check int) "evictions" 1 s.Cache.evictions;
  Alcotest.(check int) "resident" 2 (Cache.length cache);
  Alcotest.(check bool) "oldest evicted" true (Cache.find cache k1 = None);
  Alcotest.(check bool) "newest resident" true (Cache.find cache k3 <> None);
  (* A hit refreshes recency: touching k2 makes k3 the next victim. *)
  ignore (Cache.find_or_build cache k2 ~build);
  ignore (Cache.find_or_build cache k1 ~build);
  Alcotest.(check bool) "recency refreshed" true
    (Cache.find cache k2 <> None && Cache.find cache k3 = None)

let test_cache_single_flight () =
  let cache = Cache.create () in
  let k = small_key 7 in
  let barrier = Atomic.make 0 in
  let results = Array.make 4 None in
  let threads =
    Array.init 4 (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < 4 do
              Thread.yield ()
            done;
            let art, _hit = Cache.find_or_build cache k ~build:Server.build_artifact in
            results.(i) <- Some art)
          ())
  in
  Array.iter Thread.join threads;
  let s = Cache.stats cache in
  Alcotest.(check int) "exactly one build" 1 s.Cache.misses;
  Alcotest.(check int) "everyone else hits" 3 s.Cache.hits;
  let first = Option.get results.(0) in
  Array.iter
    (fun r -> Alcotest.(check bool) "one publication" true (Option.get r == first))
    results

(* Replay cache lookups under explored interleavings: the explorer
   serializes every linearization of an all-independent task graph, so every
   ordering of racing lookups is exercised.  Under each one the cache must
   build each distinct key exactly once and hand every task the same
   physically-equal artifact — no torn or duplicate publication. *)
let test_cache_interleaving_replay () =
  let num_tasks = 4 in
  let g =
    Explore.graph ~num_tasks ~in_degree:(Array.make num_tasks 0)
      ~successors:(fun _ -> [])
  in
  let check_schedule order =
    let cache = Cache.create () in
    let results = Array.make num_tasks None in
    Explore.run_schedule g ~order ~execute:(fun i ->
        let art, _ =
          Cache.find_or_build cache (small_key (i mod 2)) ~build:Server.build_artifact
        in
        results.(i) <- Some art);
    let s = Cache.stats cache in
    assert (s.Cache.misses = 2 && s.Cache.hits = num_tasks - 2);
    for i = 0 to num_tasks - 1 do
      for j = 0 to num_tasks - 1 do
        if i mod 2 = j mod 2 then
          assert (Option.get results.(i) == Option.get results.(j))
      done
    done
  in
  let { Explore.explored; complete } = Explore.explore_systematic g ~f:check_schedule in
  Alcotest.(check bool) "all 4! orders" true (complete && explored = 24);
  (* And a seeded pass over a wider race. *)
  let g6 =
    Explore.graph ~num_tasks:6 ~in_degree:(Array.make 6 0) ~successors:(fun _ -> [])
  in
  Explore.for_each_seed g6 (fun ~seed:_ order ->
      let cache = Cache.create () in
      Explore.run_schedule g6 ~order ~execute:(fun i ->
          ignore (Cache.find_or_build cache (small_key (i mod 3)) ~build:Server.build_artifact));
      assert ((Cache.stats cache).Cache.misses = 3))

(* {2 Bitwise identity of warm-cache evaluations} *)

let bits = Int64.bits_of_float

let likelihood_fields = function
  | P.Likelihood_r { loglik; log_det; quad_form; cache_hit; _ } ->
    (loglik, log_det, quad_form, cache_hit)
  | r -> Alcotest.failf "expected Likelihood_r, got %s" (match r with
      | P.Error_r { message; _ } -> message
      | _ -> "another reply")

let test_cache_hit_bit_identity () =
  with_server (fun srv ->
      let s = spec ~n:48 ~nb:16 () in
      let l1, d1, q1, h1 = likelihood_fields (Server.handle srv (request (P.Likelihood s))) in
      let l2, d2, q2, h2 = likelihood_fields (Server.handle srv (request (P.Likelihood s))) in
      Alcotest.(check bool) "first is cold" false h1;
      Alcotest.(check bool) "second hits" true h2;
      Alcotest.(check bool) "loglik bitwise identical" true (bits l1 = bits l2);
      Alcotest.(check bool) "log_det bitwise identical" true (bits d1 = bits d2);
      Alcotest.(check bool) "quad_form bitwise identical" true (bits q1 = bits q2);
      (* And identical to a cold run on a fresh server. *)
      with_server (fun fresh ->
          let l3, _, _, h3 =
            likelihood_fields (Server.handle fresh (request (P.Likelihood s)))
          in
          Alcotest.(check bool) "fresh server is cold" false h3;
          Alcotest.(check bool) "cold = warm bitwise" true (bits l1 = bits l3)))

let prop_cache_hit_bit_identity =
  QCheck.Test.make ~count:8 ~name:"cache-hit factorization is bitwise identical"
    (QCheck.make
       QCheck.Gen.(
         let* u_req = oneofl [ 1e-8; 1e-6; 1e-4 ] in
         let* family = oneofl [ Covariance.Sqexp; Covariance.Matern ] in
         let* beta = oneofl [ 0.05; 0.1; 0.2 ] in
         let* locs_seed = int_range 0 50 in
         let* data_seed = int_range 0 50 in
         return (spec ~n:32 ~nb:16 ~u_req ~family ~beta ~locs_seed ~data_seed ())))
    (fun s ->
      with_server (fun srv ->
          let r1 = Server.handle srv (request (P.Likelihood s)) in
          let r2 = Server.handle srv (request (P.Likelihood s)) in
          let l1, d1, q1, h1 = likelihood_fields r1 in
          let l2, d2, q2, h2 = likelihood_fields r2 in
          (* An escalated (or indefinite) first run invalidates the cached
             artifact by design, so the second run is a rebuild — still
             bitwise identical, but not a hit. *)
          let keeps_artifact =
            match r1 with
            | P.Likelihood_r { status = P.Clean | P.Corrupt_recovered _; _ } ->
              true
            | _ -> false
          in
          (not h1) && h2 = keeps_artifact && bits l1 = bits l2
          && bits d1 = bits d2 && bits q1 = bits q2))

(* {2 Monte-Carlo batching} *)

let test_mc_progress_and_batch () =
  with_server (fun srv ->
      let events = ref 0 in
      let peak = ref 0 in
      let on_progress ~completed ~total =
        incr events;
        if completed > !peak then peak := completed;
        Alcotest.(check int) "total" 5 total
      in
      match
        Server.handle srv ~on_progress
          (request (P.Mc_batch { spec = spec ~n:32 (); replicates = 5 }))
      with
      | P.Mc_r { logliks; mean_loglik; status = P.Clean; _ } ->
        Alcotest.(check int) "one loglik per replicate" 5 (Array.length logliks);
        Alcotest.(check int) "one progress event per replicate" 5 !events;
        Alcotest.(check int) "progress reaches the batch size" 5 !peak;
        Array.iter
          (fun l -> Alcotest.(check bool) "finite" true (Float.is_finite l))
          logliks;
        let sum = Array.fold_left ( +. ) 0. logliks in
        Alcotest.(check (float 1e-12)) "mean" (sum /. 5.) mean_loglik
      | _ -> Alcotest.fail "expected Mc_r")

let test_validation () =
  with_server (fun srv ->
      let expect_bad payload =
        match Server.handle srv (request payload) with
        | P.Error_r { code = P.Bad_request; _ } -> ()
        | _ -> Alcotest.fail "expected Bad_request"
      in
      expect_bad (P.Likelihood { (spec ()) with P.n = 0 });
      expect_bad (P.Likelihood { (spec ()) with P.nb = 100; n = 10 });
      expect_bad (P.Likelihood { (spec ()) with P.u_req = 0.0 });
      expect_bad (P.Likelihood { (spec ()) with P.sigma2 = nan });
      expect_bad (P.Predict { spec = spec (); n_new = 0; pred_seed = 1 });
      expect_bad (P.Mc_batch { spec = spec (); replicates = 0 }))

(* {2 Socket front end} *)

let test_socket_end_to_end () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "geomix-test-serve-%d.sock" (Unix.getpid ()))
  in
  with_server (fun srv ->
      let server_thread =
        Thread.create (fun () -> Server.serve_unix srv ~path ()) ()
      in
      let rec connect tries =
        match
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
        with
        | fd -> fd
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when tries > 0 ->
          Thread.delay 0.02;
          connect (tries - 1)
      in
      let fd = connect 250 in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let roundtrip req =
        P.write_frame oc (P.request_to_json req);
        let rec await progress =
          match P.read_frame ic with
          | Error m -> Alcotest.failf "read_frame: %s" m
          | Ok j -> (
            match P.frame_of_json j with
            | Ok (P.Reply { id; reply; _ }) ->
              Alcotest.(check string) "id echoed" req.P.id id;
              (reply, progress)
            | Ok (P.Progress _) -> await (progress + 1)
            | Error m -> Alcotest.failf "frame_of_json: %s" m)
        in
        await 0
      in
      (match roundtrip (request ~id:"ping" P.Ping) with
      | P.Pong, _ -> ()
      | _ -> Alcotest.fail "expected Pong");
      (match roundtrip (request ~id:"lik" (P.Likelihood (spec ~n:32 ()))) with
      | P.Likelihood_r { status = P.Clean; _ }, _ -> ()
      | _ -> Alcotest.fail "expected Likelihood_r");
      (match
         roundtrip (request ~id:"mc" (P.Mc_batch { spec = spec ~n:32 (); replicates = 3 }))
       with
      | P.Mc_r { logliks; _ }, progress ->
        Alcotest.(check int) "replicates" 3 (Array.length logliks);
        Alcotest.(check int) "progress frames interleaved" 3 progress
      | _ -> Alcotest.fail "expected Mc_r");
      (* A syntactically-valid but meaningless request keeps the
         connection alive with a Bad_request reply. *)
      P.write_frame oc (J.Obj [ ("id", J.Str "weird") ]);
      (match P.read_frame ic with
      | Ok j -> (
        match P.frame_of_json j with
        | Ok (P.Reply { reply = P.Error_r { code = P.Bad_request; _ }; _ }) -> ()
        | _ -> Alcotest.fail "expected Bad_request")
      | Error m -> Alcotest.failf "read_frame: %s" m);
      (match roundtrip (request ~id:"bye" P.Shutdown) with
      | P.Shutdown_r, _ -> ()
      | _ -> Alcotest.fail "expected Shutdown_r");
      Unix.close fd;
      Thread.join server_thread;
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
      Alcotest.(check bool) "requests served" true (Server.served srv >= 4))

let test_socket_disconnect_and_idle_clients () =
  (* Two front-end liveness contracts: a client hanging up before its
     reply lands must cost only its own frames (SIGPIPE is ignored, the
     dead-socket write is absorbed), and a Shutdown must wake clients
     sitting idle in the middle of the read loop instead of hanging the
     final join on them. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "geomix-test-serve-dc-%d.sock" (Unix.getpid ()))
  in
  with_server (fun srv ->
      let server_thread =
        Thread.create (fun () -> Server.serve_unix srv ~path ()) ()
      in
      let rec connect tries =
        match
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd
        with
        | fd -> fd
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when tries > 0 ->
          Thread.delay 0.02;
          connect (tries - 1)
      in
      (* Connected but never sends a byte; only the shutdown below can
         release its connection thread. *)
      let idle_fd = connect 250 in
      (* Sends a request, then hangs up before the reply. *)
      let gone_fd = connect 250 in
      let gone_oc = Unix.out_channel_of_descr gone_fd in
      P.write_frame gone_oc
        (P.request_to_json (request ~id:"gone" (P.Likelihood (spec ~n:32 ()))));
      Unix.close gone_fd;
      (* The server must still be alive and answering. *)
      let fd = connect 250 in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let roundtrip req =
        P.write_frame oc (P.request_to_json req);
        let rec await () =
          match P.read_frame ic with
          | Error m -> Alcotest.failf "read_frame: %s" m
          | Ok j -> (
            match P.frame_of_json j with
            | Ok (P.Reply { reply; _ }) -> reply
            | Ok (P.Progress _) -> await ()
            | Error m -> Alcotest.failf "frame_of_json: %s" m)
        in
        await ()
      in
      (match roundtrip (request ~id:"alive" P.Ping) with
      | P.Pong -> ()
      | _ -> Alcotest.fail "expected Pong after client disconnect");
      (match roundtrip (request ~id:"bye" P.Shutdown) with
      | P.Shutdown_r -> ()
      | _ -> Alcotest.fail "expected Shutdown_r");
      Unix.close fd;
      (* Joins even though [idle_fd] never closed its end. *)
      Thread.join server_thread;
      Unix.close idle_fd;
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists path))

let test_key_of_spec_ignores_data_seed () =
  let k1 = Cache.key_of_spec (spec ~data_seed:1 ()) in
  let k2 = Cache.key_of_spec (spec ~data_seed:999 ()) in
  Alcotest.(check bool) "same shape key" true (k1 = k2);
  Alcotest.(check bool) "distinct shapes differ" true (key () <> key ~beta:0.3 ())

let test_cache_invalidate () =
  let cache = Cache.create () in
  let k = small_key 9 in
  ignore (Cache.find_or_build cache k ~build:Server.build_artifact);
  Alcotest.(check bool) "resident" true (Cache.find cache k <> None);
  Alcotest.(check bool) "invalidate removes" true (Cache.invalidate cache k);
  Alcotest.(check bool) "gone" true (Cache.find cache k = None);
  Alcotest.(check bool) "second invalidate is a no-op" false
    (Cache.invalidate cache k);
  Alcotest.(check int) "empty" 0 (Cache.length cache)

(* {2 Resilience: chaos replay through the serve path}

   The fault plan is a pure hash of (seed, site, task, attempt), so a
   chaos run is replayable bit-for-bit: a transient storm retried from
   snapshots and an SDC storm repaired by the integrity guard must both
   produce replies bitwise-identical to the fault-free run. *)

let fault_free_reference s =
  with_server (fun srv ->
      likelihood_fields (Server.handle srv (request (P.Likelihood s))))

let test_chaos_transient_bitwise () =
  let s = spec ~n:32 ~nb:16 () in
  let l0, d0, q0, _ = fault_free_reference s in
  let faults = Fault.plan ~rate:1.0 ~kinds:[ Fault.Transient ] ~seed:11 () in
  with_server ~faults ~retry:(Retry.immediate ()) (fun srv ->
      match Server.handle srv (request (P.Likelihood s)) with
      | P.Likelihood_r { loglik; log_det; quad_form; status = P.Clean; _ } ->
        Alcotest.(check bool) "loglik bitwise = fault-free" true
          (bits loglik = bits l0);
        Alcotest.(check bool) "log_det bitwise = fault-free" true
          (bits log_det = bits d0);
        Alcotest.(check bool) "quad_form bitwise = fault-free" true
          (bits quad_form = bits q0)
      | P.Likelihood_r { status; _ } ->
        Alcotest.failf "expected Clean after retry, got %s" (P.status_name status)
      | _ -> Alcotest.fail "expected Likelihood_r under transient storm")

let test_chaos_sdc_recovered_bitwise () =
  let s = spec ~n:32 ~nb:16 () in
  let l0, d0, q0, _ = fault_free_reference s in
  let faults = Fault.plan ~rate:1.0 ~kinds:[ Fault.Sdc ] ~seed:5 () in
  with_server ~faults ~integrity:true (fun srv ->
      match Server.handle srv (request (P.Likelihood s)) with
      | P.Likelihood_r
          { loglik; log_det; quad_form; status = P.Corrupt_recovered k; _ } ->
        Alcotest.(check bool) "repairs counted" true (k > 0);
        Alcotest.(check bool) "loglik bitwise = fault-free" true
          (bits loglik = bits l0);
        Alcotest.(check bool) "log_det bitwise = fault-free" true
          (bits log_det = bits d0);
        Alcotest.(check bool) "quad_form bitwise = fault-free" true
          (bits quad_form = bits q0)
      | P.Likelihood_r { status; _ } ->
        Alcotest.failf "expected Corrupt_recovered, got %s" (P.status_name status)
      | _ -> Alcotest.fail "expected Likelihood_r under SDC storm")

let test_pivot_escalation_invalidates_cache () =
  let faults = Fault.plan ~pivot_rate:1.0 ~seed:3 () in
  with_server ~faults (fun srv ->
      let s = spec ~n:32 ~nb:16 () in
      (match Server.handle srv (request (P.Likelihood s)) with
      | P.Likelihood_r { status = P.Escalated k; cache_hit = false; loglik; _ }
        ->
        Alcotest.(check bool) "bands escalated" true (k > 0);
        Alcotest.(check bool) "escalated result is finite" true
          (Float.is_finite loglik)
      | P.Likelihood_r { status; _ } ->
        Alcotest.failf "expected Escalated, got %s" (P.status_name status)
      | _ -> Alcotest.fail "expected Likelihood_r under forced pivot failures");
      (* The degraded artifact must not have been cached: the same shape
         rebuilds (and re-escalates, deterministically) instead of
         laundering an FP64-widened precision map through a warm hit. *)
      match Server.handle srv (request (P.Likelihood s)) with
      | P.Likelihood_r { status = P.Escalated _; cache_hit; _ } ->
        Alcotest.(check bool) "escalated artifact never reused" false cache_hit
      | _ -> Alcotest.fail "expected a second escalated reply")

(* {2 Graceful drain on the virtual clock} *)

let test_drain_lifecycle () =
  let sleep, elapsed = Retry.virtual_clock () in
  with_server ~now:elapsed ~drain_deadline_s:2.0 (fun srv ->
      Alcotest.(check bool) "running" true (Server.drain_status srv = `Running);
      Alcotest.(check bool) "slot" true (Server.admit srv ~rank:1 = `Admitted);
      Alcotest.(check bool) "drain starts" true (Server.request_drain srv);
      Alcotest.(check bool) "idempotent" false (Server.request_drain srv);
      (match Server.drain_status srv with
      | `Draining r -> Alcotest.(check (float 1e-9)) "full deadline left" 2.0 r
      | _ -> Alcotest.fail "expected `Draining with work in flight");
      (* Admission refuses while draining; probes still answer. *)
      (match Server.handle srv (request (P.Likelihood (spec ()))) with
      | P.Error_r { code = P.Saturated; _ } -> ()
      | _ -> Alcotest.fail "expected Saturated during drain");
      (match Server.handle srv (request P.Ping) with
      | P.Pong -> ()
      | _ -> Alcotest.fail "Ping must answer during drain");
      sleep 1.0;
      (match Server.drain_status srv with
      | `Draining r -> Alcotest.(check (float 1e-9)) "clock advanced" 1.0 r
      | _ -> Alcotest.fail "still draining before the deadline");
      sleep 5.0;
      (match Server.drain_status srv with
      | `Expired -> ()
      | _ -> Alcotest.fail "expected `Expired past the deadline");
      (* The straggler finishing late still ends the drain cleanly:
         [`Drained] wins over [`Expired] once nothing is in flight. *)
      Server.release srv;
      match Server.drain_status srv with
      | `Drained -> ()
      | _ -> Alcotest.fail "expected `Drained once the last request finished")

let test_drain_completes_before_deadline () =
  let _sleep, elapsed = Retry.virtual_clock () in
  with_server ~now:elapsed (fun srv ->
      Alcotest.(check bool) "slot" true (Server.admit srv ~rank:1 = `Admitted);
      ignore (Server.request_drain srv);
      Server.release srv;
      match Server.drain_status srv with
      | `Drained -> ()
      | _ -> Alcotest.fail "expected `Drained with no work left")

let test_force_stop () =
  with_server (fun srv ->
      Alcotest.(check bool) "not draining" false (Server.draining srv);
      Server.force_stop srv;
      Alcotest.(check bool) "stopped counts as draining" true (Server.draining srv);
      Alcotest.(check bool) "stopped" true (Server.drain_status srv = `Stopped);
      Alcotest.(check bool) "drain after stop refused" false
        (Server.request_drain srv);
      match Server.handle srv (request (P.Likelihood (spec ()))) with
      | P.Error_r { code = P.Saturated; _ } -> ()
      | _ -> Alcotest.fail "expected Saturated after force_stop")

(* {2 Signal-driven lifecycle through the socket front end}

   [notify_signal] is the exact handler body the SIGTERM/SIGINT handler
   runs, so driving it from a test thread exercises the real drain and
   second-signal paths without delivering raw signals. *)

let await_socket path =
  let rec wait tries =
    if Sys.file_exists path then ()
    else if tries = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Thread.delay 0.02;
      wait (tries - 1)
    end
  in
  wait 500

let test_signal_drains_to_completion () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "geomix-test-drain-%d.sock" (Unix.getpid ()))
  in
  with_server (fun srv ->
      let outcome = ref None in
      let th =
        Thread.create
          (fun () -> outcome := Some (Server.serve_unix srv ~path ()))
          ()
      in
      await_socket path;
      Server.notify_signal ();
      Thread.join th;
      (match !outcome with
      | Some Server.Drained -> ()
      | Some o -> Alcotest.failf "expected drained, got %s" (Server.outcome_name o)
      | None -> Alcotest.fail "serve_unix never returned");
      Alcotest.(check bool) "socket removed" false (Sys.file_exists path))

let test_second_signal_forces_stop () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "geomix-test-force-%d.sock" (Unix.getpid ()))
  in
  with_server (fun srv ->
      let outcome = ref None in
      let th =
        Thread.create
          (fun () -> outcome := Some (Server.serve_unix srv ~path ()))
          ()
      in
      await_socket path;
      Server.notify_signal ();
      Server.notify_signal ();
      Thread.join th;
      (match !outcome with
      | Some Server.Forced -> ()
      | Some o -> Alcotest.failf "expected forced, got %s" (Server.outcome_name o)
      | None -> Alcotest.fail "serve_unix never returned");
      Alcotest.(check bool) "lifecycle stopped" true
        (Server.drain_status srv = `Stopped))

(* {2 Health probes} *)

let test_health_request () =
  with_server (fun srv ->
      (match Server.handle srv (request P.Health) with
      | P.Health_r h ->
        Alcotest.(check int) "idle inflight" 0 h.P.inflight;
        Alcotest.(check int) "idle queued" 0 h.P.queued;
        Alcotest.(check bool) "not draining" false h.P.draining;
        Alcotest.(check bool) "no brown-out" false h.P.brownout
      | _ -> Alcotest.fail "expected Health_r");
      (match Server.handle srv (request (P.Likelihood (spec ~n:32 ()))) with
      | P.Likelihood_r _ -> ()
      | _ -> Alcotest.fail "expected Likelihood_r");
      ignore (Server.request_drain srv);
      (* Health answers before admission, so probes work while draining. *)
      match Server.handle srv (request P.Health) with
      | P.Health_r h ->
        Alcotest.(check bool) "draining reported" true h.P.draining;
        Alcotest.(check bool) "served counted" true (h.P.cache_misses >= 1)
      | _ -> Alcotest.fail "expected Health_r during drain")

(* {2 Brown-out breaker} *)

let test_breaker_trips_and_recovers () =
  let sleep, elapsed = Retry.virtual_clock () in
  let b = Breaker.create ~now:elapsed () in
  Alcotest.(check bool) "starts closed" false (Breaker.tripped b);
  Alcotest.(check int) "closed batches uncapped" 64
    (Breaker.mc_chunk b ~replicates:64);
  for _ = 1 to 7 do
    Breaker.note_queue b ~frac:1.0
  done;
  Alcotest.(check bool) "below min_samples" false (Breaker.tripped b);
  Breaker.note_queue b ~frac:1.0;
  Alcotest.(check bool) "tripped on queue depth" true (Breaker.tripped b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check int) "open batches capped" 4 (Breaker.mc_chunk b ~replicates:64);
  Alcotest.(check int) "cap never exceeds the batch" 2
    (Breaker.mc_chunk b ~replicates:2);
  (* Hysteresis leg 1: the hold alone does not recover a hot window. *)
  sleep 1.5;
  Alcotest.(check bool) "hot window holds it open" true (Breaker.tripped b);
  (* Hysteresis leg 2: a cooled window recovers only after the hold.  The
     window holds the 8 saturated samples; the 24th zero is the first that
     drags the mean down to the 0.25 low-water mark (8/32), so recovery —
     and the window clearing — fires exactly on that push. *)
  for _ = 1 to 24 do
    Breaker.note_queue b ~frac:0.0
  done;
  Alcotest.(check bool) "recovered" false (Breaker.tripped b);
  Alcotest.(check int) "recovery is not a trip" 1 (Breaker.trips b);
  (* Windows are cleared on recovery: stale saturation samples cannot
     re-trip it below min_samples. *)
  for _ = 1 to 7 do
    Breaker.note_queue b ~frac:1.0
  done;
  Alcotest.(check bool) "cleared window needs fresh evidence" false
    (Breaker.tripped b);
  Breaker.note_queue b ~frac:1.0;
  Alcotest.(check bool) "re-tripped" true (Breaker.tripped b);
  Alcotest.(check int) "second trip counted" 2 (Breaker.trips b)

let test_breaker_trips_on_miss_rate () =
  let _sleep, elapsed = Retry.virtual_clock () in
  let b = Breaker.create ~now:elapsed () in
  for _ = 1 to 8 do
    Breaker.note_outcome b ~missed:true
  done;
  Alcotest.(check bool) "tripped on deadline misses" true (Breaker.tripped b)

let test_brownout_sheds_low_priority () =
  let cfg = { Breaker.default_config with window = 8; min_samples = 1 } in
  with_server ~breaker_config:cfg (fun srv ->
      Breaker.note_outcome (Server.breaker srv) ~missed:true;
      Alcotest.(check bool) "tripped" true (Breaker.tripped (Server.breaker srv));
      (match Server.handle srv (request ~priority:P.Low (P.Likelihood (spec ()))) with
      | P.Error_r { code = P.Saturated; message } ->
        Alcotest.(check bool) "shed, not queue-full" true
          (String.length message >= 9 && String.sub message 0 9 = "brown-out")
      | _ -> Alcotest.fail "expected the Low request shed");
      (* Higher classes still pass, and Monte-Carlo fan-out is capped but
         the batch still completes in full. *)
      let events = ref 0 in
      let on_progress ~completed:_ ~total:_ = incr events in
      (match
         Server.handle srv ~on_progress
           (request (P.Mc_batch { spec = spec ~n:32 (); replicates = 10 }))
       with
      | P.Mc_r { logliks; status = P.Clean; _ } ->
        Alcotest.(check int) "all replicates despite the cap" 10
          (Array.length logliks);
        Alcotest.(check int) "progress still per replicate" 10 !events
      | _ -> Alcotest.fail "expected Mc_r during brown-out");
      match Server.handle srv (request P.Health) with
      | P.Health_r h ->
        Alcotest.(check bool) "brown-out reported" true h.P.brownout;
        Alcotest.(check int) "shed counted" 1 h.P.shed
      | _ -> Alcotest.fail "expected Health_r")

(* {2 Per-request tracing and the stats surfaces} *)

module Metrics = Geomix_obs.Metrics
module Expo = Geomix_obs.Expo

let with_traced_server ?(trace_sample = 1.0) f =
  let obs = Metrics.create () in
  let pool = Pool.create ~num_workers:0 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> f obs (Server.create ~obs ~trace_sample ~pool ()))

let counter_of snap name =
  match Metrics.find snap name with Some (Metrics.Counter c) -> c | _ -> 0

(* At [trace_sample = 1.0] every payload reply carries a footer whose byte
   ledger equals the registry's aggregate RAW-edge accounting bitwise —
   both sides are incremented from the same kernel closure call. *)
let test_traced_footer_conservation () =
  with_traced_server (fun obs srv ->
      let replies =
        List.map
          (fun (id, s) -> Server.handle_traced srv (request ~id (P.Likelihood s)))
          [ ("a", spec ()); ("b", spec ~n:32 ()); ("a2", spec ()) ]
      in
      let footers =
        List.map
          (function
            | P.Likelihood_r _, Some f -> f
            | P.Likelihood_r _, None ->
              Alcotest.fail "traced likelihood reply lost its footer"
            | _ -> Alcotest.fail "expected Likelihood_r")
          replies
      in
      let sum g = List.fold_left (fun acc f -> acc + g f) 0 footers in
      let snap = Metrics.snapshot obs in
      Alcotest.(check int) "footer STC bytes = registry shipped_bytes"
        (counter_of snap "cholesky.shipped_bytes")
        (sum (fun f -> f.P.f_span.Geomix_obs.Span.s_bytes_stc));
      Alcotest.(check int) "footer FP64 bytes = registry shipped_bytes_fp64"
        (counter_of snap "cholesky.shipped_bytes_fp64")
        (sum (fun f -> f.P.f_span.Geomix_obs.Span.s_bytes_fp64));
      Alcotest.(check int) "footer edges = registry shipped_edges"
        (counter_of snap "cholesky.shipped_edges")
        (sum (fun f -> f.P.f_span.Geomix_obs.Span.s_edges));
      List.iter
        (fun f ->
          Alcotest.(check bool) "attributed bytes are positive" true
            (f.P.f_span.Geomix_obs.Span.s_bytes_stc > 0);
          Alcotest.(check bool) "modeled energy is positive" true
            (f.P.f_energy_j > 0.);
          Alcotest.(check bool) "critical path is positive" true
            (f.P.f_cp_s > 0.);
          Alcotest.(check string) "status carried" "clean" f.P.f_status)
        footers;
      (* The per-precision split sums back to the total. *)
      List.iter
        (fun f ->
          let by = f.P.f_span.Geomix_obs.Span.s_by_precision in
          Alcotest.(check int) "precision split sums to the total"
            f.P.f_span.Geomix_obs.Span.s_bytes_stc
            (List.fold_left (fun acc (_, b) -> acc + b) 0 by))
        footers;
      (* The warm repeat of shape [a] is a cache hit in its footer. *)
      match replies with
      | [ _; _; (_, Some f) ] ->
        Alcotest.(check bool) "warm repeat flagged as hit" true f.P.f_cache_hit
      | _ -> Alcotest.fail "expected three traced replies")

let test_untraced_no_footer () =
  with_traced_server ~trace_sample:0. (fun _obs srv ->
      match Server.handle_traced srv (request (P.Likelihood (spec ()))) with
      | P.Likelihood_r _, None -> ()
      | P.Likelihood_r _, Some _ ->
        Alcotest.fail "trace_sample = 0 must not produce footers"
      | _ -> Alcotest.fail "expected Likelihood_r")

(* Sampling is a deterministic function of the request id: the same id
   either always or never traces, independent of arrival order. *)
let test_sampling_deterministic () =
  with_traced_server ~trace_sample:0.5 (fun _obs srv ->
      let traced id =
        match Server.handle_traced srv (request ~id (P.Likelihood (spec ()))) with
        | P.Likelihood_r _, f -> Option.is_some f
        | _ -> Alcotest.fail "expected Likelihood_r"
      in
      let ids = List.init 16 (fun i -> Printf.sprintf "req-%d" i) in
      let first = List.map traced ids in
      let second = List.map traced ids in
      Alcotest.(check (list bool)) "same ids sample identically" first second)

let test_stats_request () =
  with_traced_server (fun obs srv ->
      ignore (Server.handle srv (request (P.Likelihood (spec ()))));
      (match Server.handle srv (request (P.Stats P.Stats_json)) with
      | P.Stats_r { format = P.Stats_json; body } -> (
        match J.of_string body with
        | Error m -> Alcotest.failf "stats body is not json: %s" m
        | Ok j -> (
          match Metrics.of_json j with
          | Ok snap ->
            Alcotest.(check bool) "snapshot carries serve.requests" true
              (counter_of snap "serve.requests" >= 1)
          | Error m -> Alcotest.failf "stats json did not decode: %s" m))
      | _ -> Alcotest.fail "expected Stats_r json");
      match Server.handle srv (request (P.Stats P.Stats_prom)) with
      | P.Stats_r { format = P.Stats_prom; body } ->
        Alcotest.(check (list string)) "prom body lints clean" [] (Expo.lint body);
        (match Expo.parse body with
        | Ok samples ->
          let live = Metrics.snapshot obs in
          (match Expo.find samples "geomix_serve_requests" with
          | Some s ->
            Alcotest.(check int) "scrape matches the registry"
              (counter_of live "serve.requests")
              (int_of_float s.Expo.value)
          | None -> Alcotest.fail "geomix_serve_requests missing from scrape")
        | Error m -> Alcotest.failf "prom body did not parse: %s" m)
      | _ -> Alcotest.fail "expected Stats_r prom")

let test_stats_codec_roundtrip () =
  List.iter roundtrip_request
    [ request (P.Stats P.Stats_json); request (P.Stats P.Stats_prom) ];
  roundtrip_frame
    (P.Reply
       {
         id = "s";
         reply = P.Stats_r { format = P.Stats_prom; body = "# scrape\n" };
         footer = None;
       })

let test_footer_codec_roundtrip () =
  with_traced_server (fun _obs srv ->
      match Server.handle_traced srv (request (P.Likelihood (spec ()))) with
      | reply, Some footer ->
        roundtrip_frame (P.Reply { id = "t"; reply; footer = Some footer })
      | _, None -> Alcotest.fail "expected a footer to round-trip")

(* Satellite: the serve registry exports the cache and brown-out window
   instruments, so one scrape sees admission, cache and breaker health. *)
let test_serve_metric_presence () =
  with_traced_server (fun obs srv ->
      ignore (Server.handle srv (request (P.Likelihood (spec ()))));
      ignore (Server.handle srv (request (P.Likelihood (spec ()))));
      let snap = Metrics.snapshot obs in
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " registered") true
            (Option.is_some (Metrics.find snap name)))
        [
          "serve.cache.hits";
          "serve.cache.misses";
          "serve.cache.evictions";
          "serve.cache.invalidations";
          "serve.brownout";
          "serve.brownout_trips";
          "serve.brownout_queue_mean";
          "serve.brownout_miss_mean";
          "serve.latency_s";
        ];
      Alcotest.(check int) "warm repeat hit counted" 1
        (counter_of snap "serve.cache.hits");
      ignore srv)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request codec round-trips" `Quick test_request_roundtrip;
          Alcotest.test_case "frame codec round-trips" `Quick test_frame_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick test_reject_malformed;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          Alcotest.test_case "framing round-trips" `Quick test_framing_roundtrip;
          Alcotest.test_case "framing eof and oversize" `Quick
            test_framing_eof_and_oversize;
        ] );
      ( "admission",
        [
          Alcotest.test_case "saturation rejects" `Quick test_admission_saturation;
          Alcotest.test_case "priority order" `Quick test_admission_priority_order;
          Alcotest.test_case "deadline at admission" `Quick test_deadline_at_admission;
          Alcotest.test_case "deadline mid-batch" `Quick test_deadline_mid_batch;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key ignores data seed" `Quick
            test_key_of_spec_ignores_data_seed;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "single-flight build" `Quick test_cache_single_flight;
          Alcotest.test_case "interleaving replay" `Quick
            test_cache_interleaving_replay;
          Alcotest.test_case "cache-hit bit identity" `Quick
            test_cache_hit_bit_identity;
          QCheck_alcotest.to_alcotest prop_cache_hit_bit_identity;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "transient storm replays bitwise" `Quick
            test_chaos_transient_bitwise;
          Alcotest.test_case "sdc storm recovered bitwise" `Quick
            test_chaos_sdc_recovered_bitwise;
          Alcotest.test_case "pivot escalation invalidates cache" `Quick
            test_pivot_escalation_invalidates_cache;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "drain state machine" `Quick test_drain_lifecycle;
          Alcotest.test_case "drain completes before deadline" `Quick
            test_drain_completes_before_deadline;
          Alcotest.test_case "force stop" `Quick test_force_stop;
          Alcotest.test_case "signal drains to completion" `Quick
            test_signal_drains_to_completion;
          Alcotest.test_case "second signal forces stop" `Quick
            test_second_signal_forces_stop;
          Alcotest.test_case "health probe" `Quick test_health_request;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips and recovers" `Quick
            test_breaker_trips_and_recovers;
          Alcotest.test_case "trips on miss rate" `Quick
            test_breaker_trips_on_miss_rate;
          Alcotest.test_case "sheds low priority" `Quick
            test_brownout_sheds_low_priority;
        ] );
      ( "service",
        [
          Alcotest.test_case "mc batch progress" `Quick test_mc_progress_and_batch;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "socket end to end" `Quick test_socket_end_to_end;
          Alcotest.test_case "disconnect and idle clients" `Quick
            test_socket_disconnect_and_idle_clients;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "footer conservation" `Quick
            test_traced_footer_conservation;
          Alcotest.test_case "untraced has no footer" `Quick
            test_untraced_no_footer;
          Alcotest.test_case "sampling deterministic" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "stats request" `Quick test_stats_request;
          Alcotest.test_case "stats codec round-trips" `Quick
            test_stats_codec_roundtrip;
          Alcotest.test_case "footer codec round-trips" `Quick
            test_footer_codec_roundtrip;
          Alcotest.test_case "serve metric presence" `Quick
            test_serve_metric_presence;
        ] );
    ]
