(* Critical-path profiler: exact analysis on hand-built graphs, and the
   invariants the report pipeline relies on — cp ≤ makespan ≤ Σ durations,
   attribution buckets summing to total busy time, zero slack along the
   chain, and schedule-independence of the analysis under the virtual
   executor's seeded replays of generated DTD programs. *)

module P = Geomix_obs.Profile
module Dtd = Geomix_runtime.Dtd
module Gen = Geomix_verify.Gen
module Explore = Geomix_verify.Explore

let feq msg = Alcotest.(check (float 1e-12)) msg

let m ~id ~label ?(prec = "") ~worker ~start ~stop () =
  { P.id; label; cls = P.class_of_label label; prec; worker; start; stop }

(* Diamond 0 → {1, 2} → 3 with durations 1, 2, 5, 1: the critical path runs
   through the slow middle task. *)
let diamond_preds = [| []; [ 0 ]; [ 0 ]; [ 1; 2 ] |]

let diamond_measures =
  [
    m ~id:0 ~label:"POTRF(0)" ~prec:"FP64" ~worker:0 ~start:0. ~stop:1. ();
    m ~id:1 ~label:"TRSM(1,0)" ~prec:"FP32" ~worker:0 ~start:1. ~stop:3. ();
    m ~id:2 ~label:"SYRK(1,0)" ~prec:"FP16" ~worker:1 ~start:1. ~stop:6. ();
    m ~id:3 ~label:"POTRF(1)" ~prec:"FP64" ~worker:0 ~start:6. ~stop:7. ();
  ]

let test_diamond_exact () =
  let p = P.analyze ~preds:diamond_preds diamond_measures in
  feq "makespan" 7. p.P.makespan;
  feq "busy" 9. p.P.busy;
  feq "cp length" 7. p.P.cp_length;
  Alcotest.(check (list int)) "chain" [ 0; 2; 3 ] p.P.cp_chain;
  Alcotest.(check (list string)) "chain labels"
    [ "POTRF(0)"; "SYRK(1,0)"; "POTRF(1)" ]
    p.P.cp_chain_labels;
  feq "cp fraction" 1. p.P.cp_frac;
  feq "slack on chain head" 0. p.P.slack.(0);
  feq "slack on chain middle" 0. p.P.slack.(2);
  feq "slack on chain tail" 0. p.P.slack.(3);
  feq "slack of off-chain task" 3. p.P.slack.(1);
  Alcotest.(check int) "tasks" 4 p.P.tasks;
  Alcotest.(check int) "workers" 2 p.P.workers

let test_diamond_attribution () =
  let p = P.analyze ~preds:diamond_preds diamond_measures in
  let sum buckets =
    List.fold_left (fun acc (b : P.bucket) -> acc +. b.P.busy) 0. buckets
  in
  feq "classes sum to busy" p.P.busy (sum p.P.by_class);
  feq "precisions sum to busy" p.P.busy (sum p.P.by_precision);
  feq "workers sum to busy" p.P.busy
    (List.fold_left (fun acc w -> acc +. w.P.wbusy) 0. p.P.by_worker);
  (* Buckets come back sorted by busy time, largest first. *)
  (match p.P.by_class with
  | top :: _ -> Alcotest.(check string) "dominant class" "SYRK" top.P.key
  | [] -> Alcotest.fail "no class buckets");
  feq "lower bound, 1 worker" 9. (P.lower_bound p ~workers:1);
  feq "lower bound, 2 workers" 7. (P.lower_bound p ~workers:2);
  feq "lower bound saturates at cp" 7. (P.lower_bound p ~workers:64);
  feq "speedup capped by cp" 1. (P.predicted_speedup p ~workers:2)

let test_multi_round_durations_accumulate () =
  (* A retried/re-run task records several spans under the same id; its
     duration is their sum, as in a factorize_robust multi-round trace. *)
  let p =
    P.analyze
      ~preds:[| []; [ 0 ] |]
      [
        m ~id:0 ~label:"A" ~worker:0 ~start:0. ~stop:1. ();
        m ~id:0 ~label:"A" ~worker:0 ~start:2. ~stop:3. ();
        m ~id:1 ~label:"B" ~worker:0 ~start:3. ~stop:4. ();
      ]
  in
  feq "summed duration enters cp" 3. p.P.cp_length;
  Alcotest.(check int) "two distinct tasks" 2 p.P.tasks;
  Alcotest.(check int) "three spans" 3 p.P.spans

let test_empty_and_errors () =
  let p = P.analyze ~preds:[||] [] in
  feq "empty makespan" 0. p.P.makespan;
  feq "empty cp" 0. p.P.cp_length;
  Alcotest.(check (list int)) "empty chain" [] p.P.cp_chain;
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "id outside graph" true
    (raises (fun () ->
         P.analyze ~preds:[| [] |] [ m ~id:1 ~label:"x" ~worker:0 ~start:0. ~stop:1. () ]));
  Alcotest.(check bool) "negative span" true
    (raises (fun () ->
         P.analyze ~preds:[| [] |] [ m ~id:0 ~label:"x" ~worker:0 ~start:1. ~stop:0. () ]));
  Alcotest.(check bool) "cyclic graph" true
    (raises (fun () -> P.analyze ~preds:[| [ 1 ]; [ 0 ] |] []));
  Alcotest.(check bool) "lower_bound workers < 1" true
    (raises (fun () -> P.lower_bound p ~workers:0))

let test_class_of_label () =
  Alcotest.(check string) "kernel label" "GEMM" (P.class_of_label "GEMM(5,3,1)");
  Alcotest.(check string) "no args" "flush" (P.class_of_label "flush")

(* Serial layout of a schedule: each task's measured span laid end to end in
   schedule order, with durations a pure function of the task id.  Durations
   are dyadic rationals so every sum the analysis forms — forward, backward,
   or in schedule order — is exact, letting invariants hold with [=]. *)
let dur id = float_of_int (1 + (id * 7919 mod 5)) /. 1024.

let serial_measures t order =
  let clock = ref 0. in
  Array.to_list
    (Array.map
       (fun id ->
         let start = !clock in
         clock := !clock +. dur id;
         m ~id ~label:(Dtd.name t id)
           ~prec:[| "fp64"; "fp32"; "fp16" |].(id mod 3)
           ~worker:0 ~start ~stop:!clock ())
       order)

let prop_invariants_under_replays =
  QCheck.Test.make ~name:"cp<=makespan<=sum; buckets sum; replay-invariant"
    ~count:40
    (Gen.program_spec ())
    (fun spec ->
      let t = Gen.dtd_of_program (Gen.program_of_spec spec) in
      let g = Explore.of_dtd t in
      let preds = Explore.predecessors g in
      let reference = ref None in
      Explore.for_each_seed ~seeds:5 g (fun ~seed:_ order ->
          let p = P.analyze ~preds (serial_measures t order) in
          let total = Array.fold_left (fun acc id -> acc +. dur id) 0. order in
          (* Serial layout: makespan = busy = Σ durations; cp below both. *)
          assert (p.P.cp_length <= p.P.makespan +. 1e-12);
          assert (p.P.makespan <= total +. 1e-12);
          assert (Float.abs (p.P.busy -. total) <= 1e-12);
          let sum bs =
            List.fold_left (fun acc (b : P.bucket) -> acc +. b.P.busy) 0. bs
          in
          assert (Float.abs (sum p.P.by_class -. p.P.busy) <= 1e-9);
          assert (Float.abs (sum p.P.by_precision -. p.P.busy) <= 1e-9);
          Array.iter (fun s -> assert (s >= 0.)) p.P.slack;
          List.iter (fun id -> assert (p.P.slack.(id) = 0.)) p.P.cp_chain;
          (* The analysis is a function of graph + durations alone: every
             seeded replay must reproduce the same critical path. *)
          match !reference with
          | None -> reference := Some (p.P.cp_length, p.P.cp_chain)
          | Some (cp, chain) ->
            assert (p.P.cp_length = cp);
            assert (p.P.cp_chain = chain));
      true)

let prop_lower_bound_monotone =
  QCheck.Test.make ~name:"lower bound nonincreasing in workers" ~count:40
    (Gen.program_spec ())
    (fun spec ->
      let t = Gen.dtd_of_program (Gen.program_of_spec spec) in
      let g = Explore.of_dtd t in
      let preds = Explore.predecessors g in
      let p = P.analyze ~preds (serial_measures t (Explore.sequential_schedule g)) in
      let ok = ref true in
      for w = 1 to 7 do
        if P.lower_bound p ~workers:(w + 1) > P.lower_bound p ~workers:w +. 1e-15 then
          ok := false;
        if P.lower_bound p ~workers:w < p.P.cp_length -. 1e-15 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "profile"
    [
      ( "analysis",
        [
          Alcotest.test_case "diamond critical path" `Quick test_diamond_exact;
          Alcotest.test_case "attribution and bounds" `Quick test_diamond_attribution;
          Alcotest.test_case "multi-round durations" `Quick
            test_multi_round_durations_accumulate;
          Alcotest.test_case "empty and invalid inputs" `Quick test_empty_and_errors;
          Alcotest.test_case "class of label" `Quick test_class_of_label;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_invariants_under_replays; prop_lower_bound_monotone ] );
    ]
