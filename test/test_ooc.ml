(* Out-of-core tile store and driver: codec losslessness, residency and
   eviction order, crash consistency (no torn tile ever escapes the
   committed manifest), disk-fault recovery, and bitwise parity of the
   out-of-core factorization with the in-core one — killed, resumed or
   uninterrupted. *)

module Mat = Geomix_linalg.Mat
module Tiled = Geomix_tile.Tiled
module Fp = Geomix_precision.Fpformat
module Fault = Geomix_fault.Fault
module Metrics = Geomix_obs.Metrics
module Codec = Geomix_ooc.Codec
module Store = Geomix_ooc.Store
module Pm = Geomix_core.Precision_map
module Mp = Geomix_core.Mp_cholesky
module Ooc = Geomix_core.Ooc_cholesky
module Dtd = Geomix_runtime.Dtd
module Explore = Geomix_verify.Explore
module Rng = Geomix_util.Rng

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "geomix_ooc_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let mat_equal_bits a b =
  Mat.rows a = Mat.rows b
  && Mat.cols a = Mat.cols b
  &&
  let ok = ref true in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if
        Int64.bits_of_float (Mat.get a i j)
        <> Int64.bits_of_float (Mat.get b i j)
      then ok := false
    done
  done;
  !ok

let decay_spd n =
  Mat.init ~rows:n ~cols:n (fun i j ->
    (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_codec_roundtrip_all_scalars () =
  let rng = Rng.create ~seed:7 in
  List.iter
    (fun s ->
      let m =
        Mat.init ~rows:5 ~cols:3 (fun _ _ -> Rng.uniform rng ~lo:(-2.) ~hi:2.)
      in
      let r = Mat.rounded s m in
      let payload = Codec.encode s r in
      Alcotest.(check int)
        (Fp.scalar_name s ^ " payload size")
        (Codec.payload_bytes s ~rows:5 ~cols:3)
        (Bytes.length payload);
      let back = Codec.decode s ~rows:5 ~cols:3 payload in
      Alcotest.(check bool)
        (Fp.scalar_name s ^ " bit-exact round trip")
        true (mat_equal_bits r back))
    Fp.all_scalars

let test_codec_narrowest_lossless () =
  let rng = Rng.create ~seed:11 in
  List.iter
    (fun s ->
      let m =
        Mat.rounded s
          (Mat.init ~rows:4 ~cols:4 (fun _ _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.))
      in
      let chosen = Codec.narrowest m in
      Alcotest.(check bool)
        (Fp.scalar_name s ^ " narrowest no wider than source")
        true
        (Fp.scalar_bytes chosen <= Fp.scalar_bytes s);
      let back =
        Codec.decode chosen ~rows:4 ~cols:4 (Codec.encode chosen m)
      in
      Alcotest.(check bool)
        (Fp.scalar_name s ^ " narrowest round trip exact")
        true (mat_equal_bits m back))
    [ Fp.S_fp8_e4m3; Fp.S_fp16; Fp.S_bf16; Fp.S_fp32; Fp.S_fp64 ]

let test_codec_nan_falls_back_to_fp64 () =
  let m = Mat.init ~rows:2 ~cols:2 (fun i j -> if i = j then nan else 0.5) in
  Alcotest.(check bool) "nan forces fp64" true (Codec.narrowest m = Fp.S_fp64);
  let back = Codec.decode Fp.S_fp64 ~rows:2 ~cols:2 (Codec.encode Fp.S_fp64 m) in
  Alcotest.(check bool) "nan survives" true (Float.is_nan (Mat.get back 0 0))

(* ------------------------------------------------------------------ *)
(* Store residency *)

let const_mat rows cols v = Mat.init ~rows ~cols (fun _ _ -> v)

let test_store_put_acquire_release () =
  with_dir (fun dir ->
    let st = Store.create ~dir () in
    Store.put st 0 (const_mat 4 4 1.5);
    let m = Store.acquire st 0 in
    Alcotest.(check (float 0.)) "value" 1.5 (Mat.get m 2 3);
    Store.release st 0;
    Alcotest.(check bool) "mem" true (Store.mem st 0);
    Alcotest.(check bool) "unknown raises" true
      (try
         ignore (Store.acquire st 9);
         false
       with Not_found -> true))

let test_store_eviction_respects_budget_and_pins () =
  with_dir (fun dir ->
    (* budget of two 4x4 fp64 tiles = 256 B *)
    let st = Store.create ~budget:256 ~dir () in
    Store.put st 0 (const_mat 4 4 1.0);
    Store.put st 1 (const_mat 4 4 2.0);
    Store.put st 2 (const_mat 4 4 3.0);
    Alcotest.(check bool) "within budget" true (Store.resident_bytes st <= 256);
    Alcotest.(check bool) "evicted something" true (Store.evictions st >= 1);
    (* a pinned tile survives arbitrary pressure *)
    let m1 = Store.acquire st 1 in
    Store.put st 3 (const_mat 4 4 4.0);
    Store.put st 4 (const_mat 4 4 5.0);
    Alcotest.(check bool) "pinned stays resident" true (Store.resident st 1);
    Alcotest.(check (float 0.)) "pinned content" 2.0 (Mat.get m1 0 0);
    Store.release st 1;
    (* reload of an evicted tile is bit-exact *)
    let m0 = Store.acquire st 0 in
    Alcotest.(check bool) "reload exact" true
      (mat_equal_bits m0 (const_mat 4 4 1.0));
    Store.release st 0)

let test_store_priority_order () =
  with_dir (fun dir ->
    let st = Store.create ~budget:128 ~dir () in
    (* Priority: key 0 is "needed soonest" (low), key 2 farthest (high). *)
    Store.set_priority st (Some (fun k -> k));
    Store.put st 0 (const_mat 4 4 1.0);
    Store.put st 1 (const_mat 4 4 2.0);
    (* inserting key 2 (farthest next use) must evict it or key 1, never
       key 0 *)
    Store.put st 2 (const_mat 4 4 3.0);
    Alcotest.(check bool) "soonest-needed tile kept" true (Store.resident st 0))

let test_store_spilled_bytes_track_precision () =
  with_dir (fun dir ->
    let st = Store.create ~dir () in
    (* fp16-exact values spill at 2 B/elt, strictly below the 8 B/elt
       FP64-equivalent accounting *)
    Store.put st 0 (Mat.rounded Fp.S_fp16 (const_mat 8 8 0.7));
    Store.flush st;
    Alcotest.(check int) "fp16 spill bytes" (2 * 64) (Store.spilled_bytes st);
    Alcotest.(check int) "fp64-equivalent" (8 * 64) (Store.spilled_bytes_fp64 st);
    Alcotest.(check bool) "per-scalar ledger" true
      (List.mem_assoc Fp.S_fp16 (Store.spilled_by_scalar st)))

(* ------------------------------------------------------------------ *)
(* Checkpoint / recover *)

let test_store_checkpoint_recover_roundtrip () =
  with_dir (fun dir ->
    let st = Store.create ~dir () in
    let v0 = const_mat 3 5 1.25 and v1 = const_mat 4 4 (-2.5) in
    Store.put st 0 (Mat.copy v0);
    Store.put st 1 (Mat.copy v1);
    Store.checkpoint st ~meta:[ ("phase", "seed") ] ~epoch:1 ();
    let st2, r = Store.recover ~dir () in
    Alcotest.(check int) "epoch" 1 r.Store.rec_epoch;
    Alcotest.(check (list int)) "present" [ 0; 1 ] r.Store.present;
    Alcotest.(check (list int)) "quarantined" [] r.Store.quarantined;
    Alcotest.(check (option string))
      "meta" (Some "seed")
      (List.assoc_opt "phase" r.Store.rec_meta);
    let m0 = Store.acquire st2 0 in
    Alcotest.(check bool) "tile 0 exact" true (mat_equal_bits m0 v0);
    Store.release st2 0;
    let m1 = Store.acquire st2 1 in
    Alcotest.(check bool) "tile 1 exact" true (mat_equal_bits m1 v1);
    Store.release st2 1)

let test_store_no_manifest () =
  with_dir (fun dir ->
    Alcotest.(check bool) "raises No_manifest" true
      (try
         ignore (Store.recover ~dir ());
         false
       with Store.Store_error (Store.No_manifest _) -> true))

let test_store_uncommitted_spill_discarded () =
  with_dir (fun dir ->
    let st = Store.create ~dir () in
    Store.put st 0 (const_mat 4 4 1.0);
    Store.checkpoint st ~epoch:1 ();
    (* overwrite and spill but never commit: recover must return the
       committed image, and the orphan record must be gone *)
    Store.put st 0 (const_mat 4 4 9.0);
    Store.flush st;
    let st2, r = Store.recover ~dir () in
    Alcotest.(check (list int)) "present" [ 0 ] r.Store.present;
    let m = Store.acquire st2 0 in
    Alcotest.(check bool) "committed image, not the orphan" true
      (mat_equal_bits m (const_mat 4 4 1.0));
    Store.release st2 0;
    let stray =
      Array.to_list (Sys.readdir dir)
      |> List.filter (fun f ->
             Filename.check_suffix f ".tmp"
             || (String.length f > 5 && String.sub f 0 5 = "tile_"
                && f <> (match Store.keys st2 with _ -> "")
                && not (Filename.check_suffix f ".quarantined")))
    in
    (* exactly one committed record file for key 0 *)
    Alcotest.(check int) "one surviving record" 1 (List.length stray))

let find_record dir key =
  Array.to_list (Sys.readdir dir)
  |> List.find (fun f ->
         let p = Printf.sprintf "tile_%d.v" key in
         String.length f >= String.length p && String.sub f 0 (String.length p) = p
         && not (Filename.check_suffix f ".quarantined"))

let flip_byte path off =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let i = off mod n in
  Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 0x40);
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_store_bit_rot_quarantined () =
  with_dir (fun dir ->
    let st = Store.create ~dir () in
    Store.put st 0 (const_mat 4 4 1.0);
    Store.put st 1 (const_mat 4 4 2.0);
    Store.checkpoint st ~epoch:1 ();
    (* rot a payload byte of tile 1's committed record on disk *)
    flip_byte (Filename.concat dir (find_record dir 1)) 60;
    let obs = Metrics.create () in
    let st2, r = Store.recover ~obs ~dir () in
    Alcotest.(check (list int)) "present" [ 0 ] r.Store.present;
    Alcotest.(check (list int)) "quarantined" [ 1 ] r.Store.quarantined;
    Alcotest.(check int) "counter" 1 (Store.quarantined_count st2);
    Alcotest.(check bool) "forensic file kept" true
      (Array.exists
         (fun f -> Filename.check_suffix f ".quarantined")
         (Sys.readdir dir));
    (* the surviving tile still verifies and loads *)
    let m = Store.acquire st2 0 in
    Alcotest.(check bool) "survivor exact" true (mat_equal_bits m (const_mat 4 4 1.0));
    Store.release st2 0)

(* ------------------------------------------------------------------ *)
(* Disk-fault seam: injected ENOSPC / short writes are retried into a
   verified record; injected read bit-flips are re-read clean. *)

let test_store_write_faults_recovered () =
  with_dir (fun dir ->
    let faults = Fault.plan ~seed:5 ~disk_rate:1.0 ~fail_attempts:1 () in
    let st = Store.create ~faults ~max_attempts:3 ~dir () in
    for k = 0 to 5 do
      Store.put st k (const_mat 4 4 (float_of_int k +. 0.5))
    done;
    Store.checkpoint st ~epoch:1 ();
    Alcotest.(check bool) "spill retries happened" true (Store.spill_retries st > 0);
    (* every record verified on a clean reopen *)
    let st2, r = Store.recover ~dir () in
    Alcotest.(check int) "all present" 6 (List.length r.Store.present);
    List.iter
      (fun k ->
        let m = Store.acquire st2 k in
        Alcotest.(check bool)
          (Printf.sprintf "tile %d exact" k)
          true
          (mat_equal_bits m (const_mat 4 4 (float_of_int k +. 0.5)));
        Store.release st2 k)
      r.Store.present)

let test_store_read_faults_recovered () =
  with_dir (fun dir ->
    let st = Store.create ~dir () in
    for k = 0 to 5 do
      Store.put st k (const_mat 4 4 (float_of_int k))
    done;
    Store.checkpoint st ~epoch:1 ();
    (* reopen with first-attempt read bit-flips armed: the checksum
       catches each flip and the bounded re-read converges *)
    let faults = Fault.plan ~seed:9 ~disk_rate:1.0 ~fail_attempts:1 () in
    let st2, r = Store.recover ~faults ~max_attempts:3 ~dir () in
    Alcotest.(check int) "all present" 6 (List.length r.Store.present);
    Alcotest.(check bool) "read retries happened" true (Store.read_retries st2 > 0);
    List.iter
      (fun k ->
        let m = Store.acquire st2 k in
        Alcotest.(check bool)
          (Printf.sprintf "tile %d exact" k)
          true
          (mat_equal_bits m (const_mat 4 4 (float_of_int k)));
        Store.release st2 k)
      r.Store.present)

(* ------------------------------------------------------------------ *)
(* Crash property: under any seeded kill point and any ENOSPC/short-write
   plan, recovery never surfaces a torn tile — every present key carries
   exactly its last-committed image. *)

exception Crash

let crash_property (seed, kill_at, with_faults) =
  with_dir (fun dir ->
    let faults =
      if with_faults then
        Some (Fault.plan ~seed ~disk_rate:0.5 ~fail_attempts:1 ())
      else None
    in
    let st = Store.create ?faults ~budget:512 ~max_attempts:3 ~dir () in
    Store.set_op_hook st (Some (fun op -> if op = kill_at then raise Crash));
    let rng = Rng.create ~seed in
    (* The model: the state of the last *returned* checkpoint, plus — when
       the crash landed inside a checkpoint call, whose manifest rename is
       the atomic commit point — the state that call was committing.
       Recovery must surface exactly one of the two: old or new image,
       never a torn mixture. *)
    let committed = Hashtbl.create 8 in
    let staged = Hashtbl.create 8 in
    let in_ckpt = ref None in
    let snapshot () =
      let s = Hashtbl.copy committed in
      Hashtbl.iter (fun k v -> Hashtbl.replace s k v) staged;
      s
    in
    let epoch = ref 0 in
    (try
       for step = 1 to 12 do
         let key = Rng.int rng 5 in
         let v = const_mat 4 4 (Rng.uniform rng ~lo:0. ~hi:10.) in
         Store.put st key (Mat.copy v);
         Hashtbl.replace staged key v;
         if step mod 3 = 0 then begin
           incr epoch;
           in_ckpt := Some (snapshot ());
           Store.checkpoint st ~epoch:!epoch ();
           Hashtbl.reset committed;
           Hashtbl.iter
             (fun k v -> Hashtbl.replace committed k v)
             (Option.get !in_ckpt);
           in_ckpt := None
         end
       done
     with Crash | Store.Store_error _ -> ());
    let candidates =
      (if Hashtbl.length committed > 0 then [ committed ] else [])
      @ match !in_ckpt with Some s -> [ s ] | None -> []
    in
    let matches (model : (int, Mat.t) Hashtbl.t) (st2, r) =
      r.Store.quarantined = []
      && List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) model [])
         = r.Store.present
      && List.for_all
           (fun k ->
             let m = Store.acquire st2 k in
             let ok = mat_equal_bits m (Hashtbl.find model k) in
             Store.release st2 k;
             ok)
           r.Store.present
    in
    match Store.recover ~dir () with
    | exception Store.Store_error (Store.No_manifest _) ->
      (* acceptable only while no checkpoint call ever committed *)
      Hashtbl.length committed = 0
    | st2, r -> List.exists (fun model -> matches model (st2, r)) candidates)

let test_crash_property =
  QCheck.Test.make ~count:60 ~name:"no torn tile escapes the manifest"
    QCheck.(triple (int_bound 1000) (int_range 1 40) bool)
    crash_property

(* ------------------------------------------------------------------ *)
(* Mirror mode: Mp_cholesky ?store under a tight budget is bitwise
   identical to the in-core factorization. *)

let test_mirror_mode_bitwise () =
  with_dir (fun dir ->
    let d = decay_spd 96 in
    let nb = 16 in
    let reference = Tiled.of_dense ~nb d in
    let pmap = Pm.of_tiled ~u_req:1e-6 reference in
    Mp.factorize ~pmap reference;
    let a = Tiled.of_dense ~nb d in
    let st = Store.create ~budget:(3 * 8 * nb * nb) ~dir () in
    Mp.factorize ~store:st ~pmap a;
    Alcotest.(check bool) "store actually spilled" true (Store.spills st > 0);
    Alcotest.(check (float 0.)) "bitwise identical under eviction" 0.
      (Tiled.rel_diff a ~reference))

(* ------------------------------------------------------------------ *)
(* Left-looking out-of-core driver: parity, kill/resume, bit-rot. *)

let test_ooc_driver_matches_in_core () =
  with_dir (fun dir ->
    let d = decay_spd 96 in
    let nb = 16 in
    let reference = Tiled.of_dense ~nb d in
    let pmap = Pm.of_tiled ~u_req:1e-4 reference in
    Mp.factorize ~pmap reference;
    let a = Tiled.of_dense ~nb d in
    let st = Store.create ~budget:(4 * 8 * nb * nb) ~dir () in
    Ooc.factorize ~store:st ~pmap a;
    Alcotest.(check (float 0.)) "driver bitwise = DAG run" 0.
      (Tiled.rel_diff a ~reference);
    Alcotest.(check bool) "narrow spills beat fp64 accounting" true
      (Store.spilled_bytes st < Store.spilled_bytes_fp64 st))

let test_ooc_driver_ragged_fp64 () =
  with_dir (fun dir ->
    let d = decay_spd 50 in
    let reference = Tiled.of_dense ~nb:16 d in
    let pmap = Pm.uniform ~nt:4 Fp.Fp64 in
    Mp.factorize ~pmap reference;
    let a = Tiled.of_dense ~nb:16 d in
    let st = Store.create ~dir () in
    Ooc.factorize ~store:st ~pmap a;
    Alcotest.(check (float 0.)) "ragged bitwise" 0. (Tiled.rel_diff a ~reference))

let kill_resume_once ~kill_at ~pmap ~nb d reference =
  with_dir (fun dir ->
    let init () = Tiled.of_dense ~nb d in
    (try
       let st = Store.create ~budget:(4 * 8 * nb * nb) ~dir () in
       Store.set_op_hook st (Some (fun op -> if op = kill_at then raise Crash));
       Ooc.factorize ~store:st ~pmap (init ())
     with Crash -> ());
    let a =
      match Ooc.resume ~dir ~init ~pmap () with
      | _, a, Ooc.Resumed _ -> a
      | _, _, Ooc.Restarted _ ->
        Alcotest.fail "clean kill must not force a restart"
      | exception Store.Store_error (Store.No_manifest _) ->
        (* killed before the first manifest committed: nothing durable
           exists and the documented recovery is a fresh start *)
        let a = init () in
        Ooc.factorize ~store:(Store.create ~dir ()) ~pmap a;
        a
    in
    Alcotest.(check (float 0.))
      (Printf.sprintf "kill@%d resumes bitwise" kill_at)
      0.
      (Tiled.rel_diff a ~reference))

let test_ooc_kill_resume_bitwise () =
  let d = decay_spd 64 in
  let nb = 16 in
  let reference = Tiled.of_dense ~nb d in
  let pmap = Pm.of_tiled ~u_req:1e-6 reference in
  Mp.factorize ~pmap reference;
  (* a spread of seeded kill points: inside the initial checkpoint (no
     manifest yet), mid-run, and near the end *)
  List.iter
    (fun kill_at -> kill_resume_once ~kill_at ~pmap ~nb d reference)
    [ 1; 2; 7; 19; 25; 33; 47; 61 ]

(* After a completed (finalized) run every file in the directory is a
   committed record, so rotting one exercises the quarantine paths
   without kill-point arithmetic. *)
let committed_keys dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter_map (fun f ->
         if String.length f > 5 && String.sub f 0 5 = "tile_" then
           int_of_string_opt
             (List.hd
                (String.split_on_char '.' (String.sub f 5 (String.length f - 5))))
         else None)

let test_ooc_resume_after_ship_rot () =
  let d = decay_spd 64 in
  let nb = 16 in
  let nt = 4 in
  let reference = Tiled.of_dense ~nb d in
  let pmap = Pm.of_tiled ~u_req:1e-4 reference in
  Mp.factorize ~pmap reference;
  with_dir (fun dir ->
    let init () = Tiled.of_dense ~nb d in
    Ooc.factorize ~store:(Store.create ~dir ()) ~pmap (init ());
    let npairs = nt * (nt + 1) / 2 in
    (* rot a committed *broadcast* record on disk *)
    let ship_keys = List.filter (fun k -> k >= npairs) (committed_keys dir) in
    Alcotest.(check bool) "STC broadcast records exist" true (ship_keys <> []);
    let victim = List.hd ship_keys in
    flip_byte (Filename.concat dir (find_record dir victim)) 55;
    let _st, a, outcome = Ooc.resume ~dir ~init ~pmap () in
    (match outcome with
    | Ooc.Resumed { reshipped; _ } ->
      Alcotest.(check bool) "rotted broadcast recomputed" true (reshipped >= 1)
    | Ooc.Restarted _ -> Alcotest.fail "ship rot must not force a restart");
    Alcotest.(check (float 0.)) "rot never changes the factor" 0.
      (Tiled.rel_diff a ~reference))

let test_ooc_resume_after_stored_rot_restarts () =
  let d = decay_spd 64 in
  let nb = 16 in
  let nt = 4 in
  let reference = Tiled.of_dense ~nb d in
  let pmap = Pm.of_tiled ~u_req:1e-6 reference in
  Mp.factorize ~pmap reference;
  with_dir (fun dir ->
    let init () = Tiled.of_dense ~nb d in
    Ooc.factorize ~store:(Store.create ~dir ()) ~pmap (init ());
    (* rot a committed *stored* record: the factor prefix is untrusted
       and resume must restart from the input, never trust the rot *)
    let npairs = nt * (nt + 1) / 2 in
    let stored_key =
      List.hd (List.filter (fun k -> k < npairs) (committed_keys dir))
    in
    flip_byte (Filename.concat dir (find_record dir stored_key)) 50;
    let _st, a, outcome = Ooc.resume ~dir ~init ~pmap () in
    (match outcome with
    | Ooc.Restarted { quarantined } ->
      Alcotest.(check bool) "quarantine names the rotted key" true
        (List.mem stored_key quarantined)
    | Ooc.Resumed _ -> Alcotest.fail "stored rot must force a restart");
    Alcotest.(check (float 0.)) "restart recomputes the exact factor" 0.
      (Tiled.rel_diff a ~reference))

(* ------------------------------------------------------------------ *)
(* Explorer replay: residency hooks through the DTD footprints leave the
   store in a schedule-independent, fully consistent state. *)

let test_explorer_replay_store_consistent () =
  let reference = ref None in
  Explore.for_each_seed ~seeds:6
    (let g = Dtd.create () in
     (* a small superscalar program over 3 data *)
     for r = 0 to 3 do
       for k = 0 to 2 do
         ignore
           (Dtd.insert g
              ~name:(Printf.sprintf "t%d_%d" r k)
              ~reads:[ (k + 1) mod 3 ] ~writes:[ k ]
              (fun () -> ()))
       done
     done;
     Explore.of_dtd g)
    (fun ~seed order ->
      with_dir (fun dir ->
        let st = Store.create ~budget:64 ~dir () in
        for k = 0 to 2 do
          Store.put st k (const_mat 2 2 (float_of_int k))
        done;
        let g = Dtd.create () in
        let bump = Array.make 3 0 in
        for r = 0 to 3 do
          for k = 0 to 2 do
            ignore
              (Dtd.insert g
                 ~name:(Printf.sprintf "t%d_%d" r k)
                 ~reads:[ (k + 1) mod 3 ] ~writes:[ k ]
                 (fun () ->
                   let m = Store.acquire st k in
                   Mat.set m 0 0 (Mat.get m 0 0 +. 1.);
                   bump.(k) <- bump.(k) + 1;
                   Store.release st ~dirty:true k))
          done
        done;
        Explore.run_schedule (Explore.of_dtd g) ~order ~execute:(fun id ->
            Dtd.execute_task g id);
        Store.checkpoint st ~epoch:1 ();
        let st2, r = Store.recover ~dir () in
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d present" seed)
          [ 0; 1; 2 ] r.Store.present;
        let values =
          List.map
            (fun k ->
              let m = Store.acquire st2 k in
              let v = Mat.get m 0 0 in
              Store.release st2 k;
              Int64.bits_of_float v)
            [ 0; 1; 2 ]
        in
        match !reference with
        | None -> reference := Some values
        | Some v ->
          Alcotest.(check (list int64))
            (Printf.sprintf "seed %d schedule-independent" seed)
            v values))

let () =
  Alcotest.run "ooc"
    [
      ( "codec",
        [
          Alcotest.test_case "round trip all scalars" `Quick
            test_codec_roundtrip_all_scalars;
          Alcotest.test_case "narrowest lossless" `Quick
            test_codec_narrowest_lossless;
          Alcotest.test_case "nan falls back to fp64" `Quick
            test_codec_nan_falls_back_to_fp64;
        ] );
      ( "residency",
        [
          Alcotest.test_case "put/acquire/release" `Quick
            test_store_put_acquire_release;
          Alcotest.test_case "eviction respects budget and pins" `Quick
            test_store_eviction_respects_budget_and_pins;
          Alcotest.test_case "priority order" `Quick test_store_priority_order;
          Alcotest.test_case "spilled bytes track precision" `Quick
            test_store_spilled_bytes_track_precision;
        ] );
      ( "durability",
        [
          Alcotest.test_case "checkpoint/recover round trip" `Quick
            test_store_checkpoint_recover_roundtrip;
          Alcotest.test_case "no manifest" `Quick test_store_no_manifest;
          Alcotest.test_case "uncommitted spill discarded" `Quick
            test_store_uncommitted_spill_discarded;
          Alcotest.test_case "bit rot quarantined" `Quick
            test_store_bit_rot_quarantined;
        ] );
      ( "fault-seam",
        [
          Alcotest.test_case "write faults recovered" `Quick
            test_store_write_faults_recovered;
          Alcotest.test_case "read faults recovered" `Quick
            test_store_read_faults_recovered;
        ] );
      ( "crash",
        [ QCheck_alcotest.to_alcotest test_crash_property ] );
      ( "cholesky",
        [
          Alcotest.test_case "mirror mode bitwise" `Quick
            test_mirror_mode_bitwise;
          Alcotest.test_case "driver matches in-core" `Quick
            test_ooc_driver_matches_in_core;
          Alcotest.test_case "driver ragged fp64" `Quick
            test_ooc_driver_ragged_fp64;
          Alcotest.test_case "kill/resume bitwise" `Quick
            test_ooc_kill_resume_bitwise;
          Alcotest.test_case "ship rot recomputed on resume" `Quick
            test_ooc_resume_after_ship_rot;
          Alcotest.test_case "stored rot forces exact restart" `Quick
            test_ooc_resume_after_stored_rot_restarts;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "replayed schedules leave consistent store" `Quick
            test_explorer_replay_store_consistent;
        ] );
    ]
