module Task = Geomix_runtime.Task
module Dag = Geomix_runtime.Cholesky_dag
module Trace = Geomix_runtime.Trace
module Dag_exec = Geomix_parallel.Dag_exec
module Fp = Geomix_precision.Fpformat

let test_task_names () =
  Alcotest.(check string) "potrf" "POTRF(2)" (Task.name (Task.Potrf 2));
  Alcotest.(check string) "gemm" "GEMM(5,3,1)" (Task.name (Task.Gemm (5, 3, 1)));
  Alcotest.(check string) "short" "G" (Task.short_name (Task.Gemm (5, 3, 1)))

let test_task_footprints () =
  Alcotest.(check (pair int int)) "potrf writes" (3, 3) (Task.write_tile (Task.Potrf 3));
  Alcotest.(check (pair int int)) "syrk writes diag" (4, 4) (Task.write_tile (Task.Syrk (4, 1)));
  Alcotest.(check (list (pair int int))) "gemm reads" [ (5, 1); (3, 1) ]
    (Task.read_tiles (Task.Gemm (5, 3, 1)));
  Alcotest.(check (list (pair int int))) "trsm reads" [ (2, 2) ]
    (Task.read_tiles (Task.Trsm (4, 2)))

let test_producer_of_read () =
  Alcotest.(check string) "trsm ← potrf" "POTRF(2)"
    (Task.name (Task.producer_of_read (Task.Trsm (4, 2)) (2, 2)));
  Alcotest.(check string) "gemm A ← trsm" "TRSM(5,1)"
    (Task.name (Task.producer_of_read (Task.Gemm (5, 3, 1)) (5, 1)));
  Alcotest.(check string) "gemm B ← trsm" "TRSM(3,1)"
    (Task.name (Task.producer_of_read (Task.Gemm (5, 3, 1)) (3, 1)));
  Alcotest.check_raises "wrong tile"
    (Invalid_argument "Task.producer_of_read: tile is not read by this task") (fun () ->
    ignore (Task.producer_of_read (Task.Trsm (4, 2)) (0, 0)))

let test_exec_precision () =
  let pmap _ _ = Fp.Fp16 in
  Alcotest.(check string) "trsm floors at fp32" "FP32"
    (Fp.name (Task.exec_precision ~kernel_precision:pmap (Task.Trsm (3, 1))));
  Alcotest.(check string) "gemm keeps fp16" "FP16"
    (Fp.name (Task.exec_precision ~kernel_precision:pmap (Task.Gemm (3, 2, 1))));
  let pmap64 _ _ = Fp.Fp64 in
  Alcotest.(check string) "potrf fp64" "FP64"
    (Fp.name (Task.exec_precision ~kernel_precision:pmap64 (Task.Potrf 0)))

let test_dag_task_count () =
  List.iter
    (fun nt ->
      let dag = Dag.create ~nt in
      let expected =
        nt + (nt * (nt - 1)) + (nt * (nt - 1) * (nt - 2) / 6)
      in
      Alcotest.(check int) (Printf.sprintf "count nt=%d" nt) expected (Dag.num_tasks dag))
    [ 1; 2; 3; 5; 10; 40 ]

let test_dag_id_bijection () =
  List.iter
    (fun nt ->
      let dag = Dag.create ~nt in
      for id = 0 to Dag.num_tasks dag - 1 do
        Alcotest.(check int) "kind_of∘id_of = id" id (Dag.id_of dag (Dag.kind_of dag id))
      done)
    [ 1; 2; 3; 7; 12 ]

let test_dag_acyclic () =
  List.iter
    (fun nt ->
      let dag = Dag.create ~nt in
      Alcotest.(check bool) (Printf.sprintf "acyclic nt=%d" nt) true
        (Dag_exec.check_acyclic ~num_tasks:(Dag.num_tasks dag)
           ~successors:(Dag.successors dag)))
    [ 1; 2; 5; 10 ]

let test_dag_in_degree_matches_successors () =
  List.iter
    (fun nt ->
      let dag = Dag.create ~nt in
      let n = Dag.num_tasks dag in
      let computed = Array.make n 0 in
      for id = 0 to n - 1 do
        List.iter (fun s -> computed.(s) <- computed.(s) + 1) (Dag.successors dag id)
      done;
      Alcotest.(check (array int)) (Printf.sprintf "in-degrees nt=%d" nt) computed
        (Dag.in_degree dag))
    [ 1; 2; 3; 6; 11 ]

let test_dag_nt1_trivial () =
  let dag = Dag.create ~nt:1 in
  Alcotest.(check int) "one task" 1 (Dag.num_tasks dag);
  Alcotest.(check string) "it is POTRF(0)" "POTRF(0)" (Task.name (Dag.kind_of dag 0));
  Alcotest.(check (list int)) "no successors" [] (Dag.successors dag 0)

let test_dag_small_structure () =
  let dag = Dag.create ~nt:3 in
  let succ_names id = List.map (fun s -> Task.name (Dag.kind_of dag s)) (Dag.successors dag id) in
  Alcotest.(check (list string)) "POTRF(0) → TRSMs" [ "TRSM(1,0)"; "TRSM(2,0)" ]
    (succ_names (Dag.id_of dag (Task.Potrf 0)));
  Alcotest.(check (list string)) "TRSM(2,0) succs"
    [ "GEMM(2,1,0)"; "SYRK(2,0)" ]
    (succ_names (Dag.id_of dag (Task.Trsm (2, 0))));
  Alcotest.(check (list string)) "SYRK(1,0) → POTRF(1)" [ "POTRF(1)" ]
    (succ_names (Dag.id_of dag (Task.Syrk (1, 0))));
  Alcotest.(check (list string)) "GEMM(2,1,0) → TRSM(2,1)" [ "TRSM(2,1)" ]
    (succ_names (Dag.id_of dag (Task.Gemm (2, 1, 0))))

let test_critical_path () =
  let dag = Dag.create ~nt:5 in
  Alcotest.(check int) "3(nt-1)+1" 13 (Dag.critical_path_tasks dag)

let test_dag_executes_in_valid_order () =
  let nt = 6 in
  let dag = Dag.create ~nt in
  Geomix_parallel.Pool.with_pool ~num_workers:0 (fun pool ->
    let done_ = Array.make (Dag.num_tasks dag) false in
    Dag_exec.run ~pool ~num_tasks:(Dag.num_tasks dag) ~in_degree:(Dag.in_degree dag)
      ~successors:(Dag.successors dag)
      ~execute:(fun id ->
        (match Dag.kind_of dag id with
        | Task.Trsm (m, k) ->
          assert (done_.(Dag.id_of dag (Task.Potrf k)));
          if k > 0 then assert (done_.(Dag.id_of dag (Task.Gemm (m, k, k - 1))))
        | Task.Potrf k -> if k > 0 then assert (done_.(Dag.id_of dag (Task.Syrk (k, k - 1))))
        | Task.Syrk (m, k) -> assert (done_.(Dag.id_of dag (Task.Trsm (m, k))))
        | Task.Gemm (m, n, k) ->
          assert (done_.(Dag.id_of dag (Task.Trsm (m, k))));
          assert (done_.(Dag.id_of dag (Task.Trsm (n, k)))));
        done_.(id) <- true)
      ();
    Alcotest.(check bool) "all executed" true (Array.for_all Fun.id done_))

let test_trace_basics () =
  let t = Trace.create () in
  Trace.add t { Trace.label = "a"; resource = 0; start = 0.; stop = 1.; tag = "FP64" };
  Trace.add t { Trace.label = "b"; resource = 1; start = 0.5; stop = 2.; tag = "FP16" };
  Alcotest.(check (float 0.)) "makespan" 2. (Trace.makespan t);
  Alcotest.(check (float 0.)) "busy r0" 1. (Trace.busy_time t ~resource:0);
  Alcotest.(check (float 1e-9)) "utilisation" (2.5 /. 4.) (Trace.utilisation t ~resources:2)

let test_trace_occupancy () =
  let t = Trace.create () in
  Trace.add t { Trace.label = "a"; resource = 0; start = 0.; stop = 1.; tag = "" };
  let occ = Trace.occupancy_series t ~resources:1 ~window:0.5 in
  Alcotest.(check int) "two windows" 2 (Array.length occ);
  Array.iter (fun (_, o) -> Alcotest.(check (float 1e-9)) "full" 1. o) occ

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_chrome_json () =
  let t = Trace.create () in
  Trace.add t { Trace.label = "GEMM(1,0,0)"; resource = 0; start = 0.; stop = 0.5; tag = "FP16" };
  Trace.add t { Trace.label = "say \"hi\""; resource = 1; start = 0.25; stop = 1.; tag = "FP64" };
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool) "has event" true (contains json {|"name":"GEMM(1,0,0)"|});
  Alcotest.(check bool) "escapes quotes" true (contains json {|say \"hi\"|});
  Alcotest.(check bool) "thread metadata" true (contains json "thread_name");
  Alcotest.(check bool) "microseconds" true (contains json {|"dur":500000.000|});
  Alcotest.(check bool) "array shaped" true
    (json.[0] = '[' && contains json "]")

let test_trace_gantt () =
  let t = Trace.create () in
  Trace.add t { Trace.label = "a"; resource = 0; start = 0.; stop = 1.; tag = "FP64" };
  Trace.add t { Trace.label = "b"; resource = 1; start = 0.5; stop = 1.; tag = "X" };
  let g = Trace.gantt t ~resources:2 ~width:10 in
  let lines = String.split_on_char '\n' g in
  Alcotest.(check bool) "two rows + axis" true (List.length lines >= 3);
  Alcotest.(check bool) "busy glyph" true (contains g "FFFFFFFFFF");
  Alcotest.(check bool) "idle then busy" true (contains g ".....XXXXX")

(* Degenerate renderer inputs: empty traces and zero makespans degrade to
   empty output, width 1 still renders, and nonsensical dimensions are
   Invalid_argument instead of assertion failures. *)

let test_trace_degenerate_empty () =
  let t = Trace.create () in
  Alcotest.(check int) "occupancy of empty trace" 0
    (Array.length (Trace.occupancy_series t ~resources:2 ~window:0.5));
  Alcotest.(check string) "gantt of empty trace" "" (Trace.gantt t ~resources:2 ~width:10);
  (* All-zero-duration events at t=0: makespan 0, same degenerate path. *)
  Trace.add t { Trace.label = "z"; resource = 0; start = 0.; stop = 0.; tag = "Z" };
  Alcotest.(check int) "occupancy at zero makespan" 0
    (Array.length (Trace.occupancy_series t ~resources:1 ~window:1.));
  Alcotest.(check string) "gantt at zero makespan" "" (Trace.gantt t ~resources:1 ~width:10)

let test_trace_degenerate_width_one () =
  let t = Trace.create () in
  Trace.add t { Trace.label = "a"; resource = 0; start = 0.; stop = 1.; tag = "A" };
  Trace.add t { Trace.label = "b"; resource = 1; start = 0.5; stop = 1.; tag = "B" };
  let g = Trace.gantt t ~resources:2 ~width:1 in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' g) in
  Alcotest.(check int) "two rows + axis" 3 (List.length lines);
  Alcotest.(check bool) "row 0 busy" true (contains g "|A|");
  Alcotest.(check bool) "row 1 busy" true (contains g "|B|")

let test_trace_invalid_args () =
  let t = Trace.create () in
  Trace.add t { Trace.label = "a"; resource = 0; start = 0.; stop = 1.; tag = "" };
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "gantt width 0" true
    (raises (fun () -> Trace.gantt t ~resources:1 ~width:0));
  Alcotest.(check bool) "gantt resources 0" true
    (raises (fun () -> Trace.gantt t ~resources:0 ~width:10));
  Alcotest.(check bool) "occupancy window 0" true
    (raises (fun () -> Trace.occupancy_series t ~resources:1 ~window:0.));
  Alcotest.(check bool) "occupancy window nan" true
    (raises (fun () -> Trace.occupancy_series t ~resources:1 ~window:Float.nan));
  Alcotest.(check bool) "occupancy resources 0" true
    (raises (fun () -> Trace.occupancy_series t ~resources:0 ~window:0.5))

let prop_id_bijection =
  QCheck.Test.make ~name:"random ids decode/encode" ~count:200
    QCheck.(pair (int_range 1 64) (int_range 0 10_000_000))
    (fun (nt, raw) ->
      let dag = Dag.create ~nt in
      let id = raw mod Dag.num_tasks dag in
      Dag.id_of dag (Dag.kind_of dag id) = id)

let prop_successors_are_forward_ready =
  QCheck.Test.make ~name:"successors stay in range" ~count:100
    (QCheck.int_range 1 20)
    (fun nt ->
      let dag = Dag.create ~nt in
      let ok = ref true in
      for id = 0 to Dag.num_tasks dag - 1 do
        List.iter
          (fun s -> if s < 0 || s >= Dag.num_tasks dag then ok := false)
          (Dag.successors dag id)
      done;
      !ok)

let () =
  Alcotest.run "runtime"
    [
      ( "task",
        [
          Alcotest.test_case "names" `Quick test_task_names;
          Alcotest.test_case "footprints" `Quick test_task_footprints;
          Alcotest.test_case "producer of read" `Quick test_producer_of_read;
          Alcotest.test_case "exec precision" `Quick test_exec_precision;
        ] );
      ( "cholesky dag",
        [
          Alcotest.test_case "task count" `Quick test_dag_task_count;
          Alcotest.test_case "id bijection" `Quick test_dag_id_bijection;
          Alcotest.test_case "acyclic" `Quick test_dag_acyclic;
          Alcotest.test_case "in-degree consistency" `Quick test_dag_in_degree_matches_successors;
          Alcotest.test_case "nt=1 trivial" `Quick test_dag_nt1_trivial;
          Alcotest.test_case "small structure" `Quick test_dag_small_structure;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "valid execution order" `Quick test_dag_executes_in_valid_order;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "occupancy" `Quick test_trace_occupancy;
          Alcotest.test_case "chrome json export" `Quick test_trace_chrome_json;
          Alcotest.test_case "ascii gantt" `Quick test_trace_gantt;
          Alcotest.test_case "degenerate empty/zero makespan" `Quick
            test_trace_degenerate_empty;
          Alcotest.test_case "gantt width 1" `Quick test_trace_degenerate_width_one;
          Alcotest.test_case "invalid renderer args" `Quick test_trace_invalid_args;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_id_bijection; prop_successors_are_forward_ready ] );
    ]
