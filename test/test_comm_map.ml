module Pm = Geomix_core.Precision_map
module Cm = Geomix_core.Comm_map
module Fp = Geomix_precision.Fpformat

let scalar = Alcotest.testable Fp.pp_scalar ( = )
let strat = Alcotest.testable (fun ppf s ->
  Format.pp_print_string ppf (match s with Cm.Stc -> "STC" | Cm.Ttc -> "TTC")) ( = )

let decay rate i j = exp (-.rate *. float_of_int (abs (i - j)))

let test_uniform_fp64_all_ttc () =
  (* A pure FP64 run has no precision slack anywhere: everything TTC at
     storage precision — no accuracy impact from communication. *)
  let cm = Cm.compute (Pm.uniform ~nt:8 Fp.Fp64) in
  for i = 0 to 7 do
    for j = 0 to i do
      Alcotest.(check strat) "ttc" Cm.Ttc (Cm.strategy cm i j);
      Alcotest.(check scalar) "fp64" Fp.S_fp64 (Cm.comm_scalar cm i j)
    done
  done;
  Alcotest.(check (float 0.)) "stc fraction" 0. (Cm.stc_fraction cm)

let test_two_level_fp16_all_stc () =
  (* The paper's FP64/FP16 extreme: "all communications can employ STC"
     (Section VII-D). *)
  let nt = 8 in
  let cm = Cm.compute (Pm.two_level ~nt ~off_diag:Fp.Fp16) in
  (* Diagonal tiles broadcast FP32 (< FP64 storage) to the FP32 TRSMs. *)
  for k = 0 to nt - 2 do
    Alcotest.(check strat) "diag stc" Cm.Stc (Cm.strategy cm k k);
    Alcotest.(check scalar) "diag ships fp32" Fp.S_fp32 (Cm.comm_scalar cm k k)
  done;
  (* Off-diagonal tiles ship FP16 (< FP32 storage). *)
  for k = 0 to nt - 2 do
    for m = k + 1 to nt - 1 do
      Alcotest.(check strat) "off stc" Cm.Stc (Cm.strategy cm m k);
      Alcotest.(check scalar) "ships fp16" Fp.S_fp16 (Cm.comm_scalar cm m k)
    done
  done

let test_two_level_fp16_32_same_transfers () =
  (* FP16_32 consumes FP16 inputs, so its communication map matches FP16's. *)
  let nt = 6 in
  let a = Cm.compute (Pm.two_level ~nt ~off_diag:Fp.Fp16) in
  let b = Cm.compute (Pm.two_level ~nt ~off_diag:Fp.Fp16_32) in
  for i = 0 to nt - 1 do
    for j = 0 to i do
      Alcotest.(check scalar) "same comm" (Cm.comm_scalar a i j) (Cm.comm_scalar b i j);
      Alcotest.(check strat) "same strat" (Cm.strategy a i j) (Cm.strategy b i j)
    done
  done

let test_comm_never_above_storage () =
  let pmap = Pm.of_element_fn ~u_req:1e-6 ~n:2048 ~nb:128 (decay 0.01) in
  let cm = Cm.compute pmap in
  for i = 0 to Pm.nt pmap - 1 do
    for j = 0 to i do
      Alcotest.(check bool) "comm ≤ storage" true
        (Fp.scalar_rank (Cm.comm_scalar cm i j) <= Fp.scalar_rank (Pm.storage pmap i j))
    done
  done

let test_stc_iff_strictly_below_storage () =
  let pmap = Pm.of_element_fn ~u_req:1e-5 ~n:2048 ~nb:128 (decay 0.008) in
  let cm = Cm.compute pmap in
  for i = 0 to Pm.nt pmap - 1 do
    for j = 0 to i do
      let stc = Cm.strategy cm i j = Cm.Stc in
      let below = Fp.scalar_rank (Cm.comm_scalar cm i j) < Fp.scalar_rank (Pm.storage pmap i j) in
      Alcotest.(check bool) "STC ⇔ comm < storage" below stc
    done
  done

let test_comm_floor_is_tile_significance () =
  (* An FP64-class panel tile must never ship below FP64 unless its GEMM
     successors all consume less — the accuracy-safety clamp. *)
  let pmap = Pm.uniform ~nt:6 Fp.Fp64 in
  let cm = Cm.compute pmap in
  (* Last-column tile (5,4) has only SYRK successors: with an FP64 tile the
     floor keeps comm at FP64 (contrast the FP16 two-level case above). *)
  Alcotest.(check scalar) "floor holds" Fp.S_fp64 (Cm.comm_scalar cm 5 4)

let test_diag_raised_by_fp64_trsm () =
  (* If any TRSM in the column runs FP64 the diagonal broadcast must be
     FP64 (Algorithm 2 lines 6–11). *)
  let nt = 4 in
  (* Column 0 contains an FP64 tile at (1,0) in a map where everything else
     is FP16-class: build via of_tile_norms with crafted norms. *)
  let norms i j = if i = 1 && j = 0 then 10. else 1e-8 in
  let pmap = Pm.of_tile_norms ~u_req:1e-9 ~nt ~global_norm:10. norms in
  Alcotest.(check bool) "tile (1,0) is FP64" true (Pm.get pmap 1 0 = Fp.Fp64);
  let cm = Cm.compute pmap in
  Alcotest.(check scalar) "diag (0,0) ships fp64" Fp.S_fp64 (Cm.comm_scalar cm 0 0);
  Alcotest.(check strat) "ttc" Cm.Ttc (Cm.strategy cm 0 0)

let test_last_diagonal_no_successors () =
  let cm = Cm.compute (Pm.two_level ~nt:5 ~off_diag:Fp.Fp16) in
  Alcotest.(check strat) "last diag ttc" Cm.Ttc (Cm.strategy cm 4 4)

let test_idempotent_and_deterministic () =
  let pmap = Pm.of_element_fn ~u_req:1e-7 ~n:1024 ~nb:128 (decay 0.01) in
  let a = Cm.compute pmap and b = Cm.compute pmap in
  for i = 0 to Pm.nt pmap - 1 do
    for j = 0 to i do
      Alcotest.(check scalar) "same" (Cm.comm_scalar a i j) (Cm.comm_scalar b i j)
    done
  done

let test_render () =
  let cm = Cm.compute (Pm.two_level ~nt:4 ~off_diag:Fp.Fp16) in
  let s = Cm.render cm in
  Alcotest.(check bool) "non-empty with STC marks" true
    (String.length s > 0 && String.contains s '*')

let test_motion_nt4_hand_computed () =
  (* NT=4 two-level FP64/FP16, every quantity derivable by hand.  Tile
     (i,j) broadcasts to nt-1-j consumers: 20 transfers, of which 6 come
     from diagonal tiles (FP64 storage, shipped FP32 under STC — the
     Algorithm 2 FP32 floor on the panel broadcast) and 14 from
     off-diagonal tiles (FP32 storage for an FP16-class tile, shipped
     FP16):
       STC  = 6·4 + 14·2 =  52 B per nb² elements
       TTC  = 6·8 + 14·4 = 104
       FP64 = 20·8       = 160
     Conversions: STC converts once per broadcasting STC tile (9 of the 10
     broadcasters; the last diagonal has no consumers) plus once at each of
     the 6 diagonal consumers, whose TRSMs ingest FP16 below the FP32 wire
     format; TTC converts at every one of the 20 consumers. *)
  let nb = 1024 in
  let pmap = Pm.two_level ~nt:4 ~off_diag:Fp.Fp16 in
  let m = Cm.motion (Cm.compute pmap) pmap ~nb in
  let per_elem bytes = bytes /. float_of_int (nb * nb) in
  Alcotest.(check int) "transfers" 20 m.Cm.transfers;
  Alcotest.(check (float 0.)) "STC bytes" 52. (per_elem m.Cm.bytes_stc);
  Alcotest.(check (float 0.)) "TTC bytes" 104. (per_elem m.Cm.bytes_ttc);
  Alcotest.(check (float 0.)) "FP64 bytes" 160. (per_elem m.Cm.bytes_fp64);
  Alcotest.(check int) "STC conversions" 15 m.Cm.conv_stc;
  Alcotest.(check int) "TTC conversions" 20 m.Cm.conv_ttc

let test_motion_fp64_degenerate () =
  (* Uniform FP64: the three accountings coincide and nothing converts. *)
  let pmap = Pm.uniform ~nt:5 Fp.Fp64 in
  let m = Cm.motion (Cm.compute pmap) pmap ~nb:64 in
  Alcotest.(check (float 0.)) "stc = fp64" m.Cm.bytes_fp64 m.Cm.bytes_stc;
  Alcotest.(check (float 0.)) "ttc = fp64" m.Cm.bytes_fp64 m.Cm.bytes_ttc;
  Alcotest.(check int) "no stc conv" 0 m.Cm.conv_stc;
  Alcotest.(check int) "no ttc conv" 0 m.Cm.conv_ttc

let test_motion_fp8_override () =
  (* Satellite regression for the autotuner entry point: an FP8 override
     must show up in the reported STC bytes — no silent FP64 (or FP16)
     fallback anywhere in the accounting.  Same NT=4 two-level map as the
     hand-computed case: 6 diagonal transfers ship FP32 (4 B), 14
     off-diagonal ship FP16 (2 B).  Demoting every off-diagonal broadcast
     to E4M3 (1 B) gives 6·4 + 14·1 = 38 B per nb² vs the base 52. *)
  let nb = 1024 in
  let pmap = Pm.two_level ~nt:4 ~off_diag:Fp.Fp16 in
  let base = Cm.compute pmap in
  let cm =
    Cm.override base pmap ~f:(fun i j ->
      if i <> j then Some Fp.S_fp8_e4m3 else None)
  in
  let per_elem bytes = bytes /. float_of_int (nb * nb) in
  let m = Cm.motion cm pmap ~nb and m0 = Cm.motion base pmap ~nb in
  Alcotest.(check (float 0.)) "base STC bytes" 52. (per_elem m0.Cm.bytes_stc);
  Alcotest.(check (float 0.)) "fp8 STC bytes" 38. (per_elem m.Cm.bytes_stc);
  Alcotest.(check bool) "strictly fewer bytes on the wire" true
    (m.Cm.bytes_stc < m0.Cm.bytes_stc);
  (* TTC and FP64 accountings ignore transfer overrides. *)
  Alcotest.(check (float 0.)) "ttc unchanged" m0.Cm.bytes_ttc m.Cm.bytes_ttc;
  Alcotest.(check (float 0.)) "fp64 unchanged" m0.Cm.bytes_fp64 m.Cm.bytes_fp64;
  (* Overridden broadcasters ship E4M3 under STC. *)
  for i = 1 to 3 do
    for j = 0 to i - 1 do
      if 4 - 1 - j > 0 then begin
        Alcotest.(check strat) "stc" Cm.Stc (Cm.strategy cm i j);
        Alcotest.(check scalar) "e4m3" Fp.S_fp8_e4m3 (Cm.comm_scalar cm i j)
      end
    done
  done

let test_override_never_widens () =
  let pmap = Pm.two_level ~nt:4 ~off_diag:Fp.Fp16 in
  let base = Cm.compute pmap in
  (* Asking for FP64 everywhere would widen every transfer: refused
     tile-for-tile, the map comes back unchanged. *)
  let widened = Cm.override base pmap ~f:(fun _ _ -> Some Fp.S_fp64) in
  Alcotest.(check bool) "widening override is a no-op" true (Cm.equal base widened);
  (* The last diagonal tile never broadcasts, so even a narrowing request
     leaves it alone. *)
  let cm = Cm.override base pmap ~f:(fun i j ->
    if i = 3 && j = 3 then Some Fp.S_fp8_e5m2 else None)
  in
  Alcotest.(check bool) "non-broadcasting tile untouched" true (Cm.equal base cm)

let prop_motion_ordering =
  QCheck.Test.make ~name:"bytes: STC ≤ TTC ≤ FP64 for any norm-rule map" ~count:30
    (QCheck.pair (QCheck.float_range 1e-10 1e-2) (QCheck.float_range 0.002 0.1))
    (fun (u, rate) ->
      let pmap = Pm.of_element_fn ~u_req:u ~n:512 ~nb:64 (decay rate) in
      let m = Cm.motion (Cm.compute pmap) pmap ~nb:64 in
      m.Cm.bytes_stc <= m.Cm.bytes_ttc && m.Cm.bytes_ttc <= m.Cm.bytes_fp64)

let prop_comm_bounded =
  QCheck.Test.make ~name:"comm scalar always within [fp16, storage]" ~count:30
    (QCheck.pair (QCheck.float_range 1e-10 1e-2) (QCheck.float_range 0.002 0.1))
    (fun (u, rate) ->
      let pmap = Pm.of_element_fn ~u_req:u ~n:512 ~nb:64 (decay rate) in
      let cm = Cm.compute pmap in
      let ok = ref true in
      for i = 0 to Pm.nt pmap - 1 do
        for j = 0 to i do
          let c = Fp.scalar_rank (Cm.comm_scalar cm i j) in
          if c < Fp.scalar_rank Fp.S_fp16 || c > Fp.scalar_rank (Pm.storage pmap i j) then
            ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "comm_map"
    [
      ( "algorithm 2",
        [
          Alcotest.test_case "uniform FP64 ⇒ all TTC" `Quick test_uniform_fp64_all_ttc;
          Alcotest.test_case "FP64/FP16 ⇒ all STC" `Quick test_two_level_fp16_all_stc;
          Alcotest.test_case "FP16_32 ships like FP16" `Quick test_two_level_fp16_32_same_transfers;
          Alcotest.test_case "comm ≤ storage" `Quick test_comm_never_above_storage;
          Alcotest.test_case "STC ⇔ strictly below storage" `Quick test_stc_iff_strictly_below_storage;
          Alcotest.test_case "significance floor" `Quick test_comm_floor_is_tile_significance;
          Alcotest.test_case "diag raised by FP64 TRSM" `Quick test_diag_raised_by_fp64_trsm;
          Alcotest.test_case "last diagonal" `Quick test_last_diagonal_no_successors;
          Alcotest.test_case "deterministic" `Quick test_idempotent_and_deterministic;
          Alcotest.test_case "render" `Quick test_render;
          QCheck_alcotest.to_alcotest prop_comm_bounded;
        ] );
      ( "data motion",
        [
          Alcotest.test_case "NT=4 hand-computed" `Quick test_motion_nt4_hand_computed;
          Alcotest.test_case "uniform FP64 degenerate" `Quick test_motion_fp64_degenerate;
          Alcotest.test_case "FP8 override changes STC bytes" `Quick
            test_motion_fp8_override;
          Alcotest.test_case "override never widens" `Quick test_override_never_widens;
          QCheck_alcotest.to_alcotest prop_motion_ordering;
        ] );
    ]
