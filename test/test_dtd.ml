module Dtd = Geomix_runtime.Dtd
module Task = Geomix_runtime.Task
module Cholesky_dag = Geomix_runtime.Cholesky_dag
module Dag_exec = Geomix_parallel.Dag_exec
module Pool = Geomix_parallel.Pool
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Check = Geomix_linalg.Check
module Tiled = Geomix_tile.Tiled
module Rng = Geomix_util.Rng
module Explore = Geomix_verify.Explore

let test_raw_dependency () =
  let g = Dtd.create () in
  let w = Dtd.insert g ~name:"write" ~reads:[] ~writes:[ 1 ] (fun () -> ()) in
  let r = Dtd.insert g ~name:"read" ~reads:[ 1 ] ~writes:[] (fun () -> ()) in
  Alcotest.(check (list int)) "RAW edge" [ w ] (Dtd.predecessors g r);
  Alcotest.(check (list int)) "successor" [ r ] (Dtd.successors g w)

let test_war_dependency () =
  let g = Dtd.create () in
  let w0 = Dtd.insert g ~name:"w0" ~reads:[] ~writes:[ 1 ] (fun () -> ()) in
  let r = Dtd.insert g ~name:"r" ~reads:[ 1 ] ~writes:[] (fun () -> ()) in
  let w1 = Dtd.insert g ~name:"w1" ~reads:[] ~writes:[ 1 ] (fun () -> ()) in
  Alcotest.(check bool) "WAR edge r→w1" true (List.mem r (Dtd.predecessors g w1));
  Alcotest.(check bool) "WAW edge w0→w1" true (List.mem w0 (Dtd.predecessors g w1))

let test_waw_chain () =
  let g = Dtd.create () in
  let ids =
    List.init 5 (fun i ->
      Dtd.insert g ~name:(Printf.sprintf "w%d" i) ~reads:[] ~writes:[ 7 ] (fun () -> ()))
  in
  List.iteri
    (fun i id ->
      if i > 0 then
        Alcotest.(check (list int)) "chained" [ List.nth ids (i - 1) ] (Dtd.predecessors g id))
    ids;
  Alcotest.(check int) "critical path = chain" 5 (Dtd.critical_path_length g)

let test_independent_tasks () =
  let g = Dtd.create () in
  let a = Dtd.insert g ~name:"a" ~reads:[] ~writes:[ 1 ] (fun () -> ()) in
  let b = Dtd.insert g ~name:"b" ~reads:[] ~writes:[ 2 ] (fun () -> ()) in
  Alcotest.(check (list int)) "no deps a" [] (Dtd.predecessors g a);
  Alcotest.(check (list int)) "no deps b" [] (Dtd.predecessors g b);
  Alcotest.(check int) "depth 1" 1 (Dtd.critical_path_length g)

let test_concurrent_readers_allowed () =
  let g = Dtd.create () in
  let w = Dtd.insert g ~name:"w" ~reads:[] ~writes:[ 1 ] (fun () -> ()) in
  let r1 = Dtd.insert g ~name:"r1" ~reads:[ 1 ] ~writes:[] (fun () -> ()) in
  let r2 = Dtd.insert g ~name:"r2" ~reads:[ 1 ] ~writes:[] (fun () -> ()) in
  Alcotest.(check (list int)) "r1 deps only on w" [ w ] (Dtd.predecessors g r1);
  Alcotest.(check (list int)) "r2 deps only on w" [ w ] (Dtd.predecessors g r2);
  Alcotest.(check bool) "no reader-reader edge" true
    (not (List.mem r1 (Dtd.predecessors g r2)))

let test_execution_sequential_semantics () =
  (* Parallel execution must produce the value the sequential program
     produces, under any schedule.  The pool shows one OS-chosen schedule;
     the explorer then replays the same graph under 10 seeded
     interleavings, covering schedules the pool may never produce. *)
  let g = Dtd.create () in
  let cell = ref 0 in
  for _ = 1 to 50 do
    ignore (Dtd.insert g ~name:"incr" ~reads:[ 0 ] ~writes:[ 0 ] (fun () -> incr cell));
    ignore
      (Dtd.insert g ~name:"double" ~reads:[ 0 ] ~writes:[ 0 ] (fun () ->
         cell := !cell * 2))
  done;
  (* x ← 2(x+1) fifty times from 0 = 2^51 − 2. *)
  let expected = (1 lsl 51) - 2 in
  List.iter
    (fun workers ->
      cell := 0;
      Pool.with_pool ~num_workers:workers (fun pool -> Dtd.execute ~pool g);
      Alcotest.(check int)
        (Printf.sprintf "sequential semantics (%d workers)" workers)
        expected !cell)
    [ 0; 3 ];
  Explore.for_each_seed ~seeds:10 (Explore.of_dtd g) (fun ~seed order ->
    cell := 0;
    Array.iter (Dtd.execute_task g) order;
    Alcotest.(check int) (Printf.sprintf "sequential semantics (seed %d)" seed) expected !cell)

let test_graph_acyclic () =
  let rng = Rng.create ~seed:3 in
  let g = Dtd.create () in
  for _ = 1 to 200 do
    let reads = List.init (Rng.int rng 3) (fun _ -> Rng.int rng 10) in
    let writes = List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng 10) in
    ignore (Dtd.insert g ~name:"t" ~reads ~writes (fun () -> ()))
  done;
  Alcotest.(check bool) "acyclic" true
    (Dag_exec.check_acyclic ~num_tasks:(Dtd.num_tasks g) ~successors:(Dtd.successors g))

let test_in_degree_consistency () =
  let rng = Rng.create ~seed:4 in
  let g = Dtd.create () in
  for _ = 1 to 100 do
    let reads = List.init (Rng.int rng 3) (fun _ -> Rng.int rng 6) in
    let writes = [ Rng.int rng 6 ] in
    ignore (Dtd.insert g ~name:"t" ~reads ~writes (fun () -> ()))
  done;
  let computed = Array.make (Dtd.num_tasks g) 0 in
  for id = 0 to Dtd.num_tasks g - 1 do
    List.iter (fun s -> computed.(s) <- computed.(s) + 1) (Dtd.successors g id)
  done;
  Alcotest.(check (array int)) "in-degree matches successors" computed (Dtd.in_degree g)

(* The decisive test: express Algorithm 1 through DTD insertion (the
   paper's "sequential task insertion in nested loops") and check that the
   numeric result matches the PTG-style Cholesky_dag execution exactly. *)
let build_cholesky_dtd a =
  let ntiles = Tiled.nt a in
  let g = Dtd.create () in
  let key i j = (i * ntiles) + j in
  for k = 0 to ntiles - 1 do
    ignore
      (Dtd.insert g ~name:(Printf.sprintf "POTRF(%d)" k) ~reads:[]
         ~writes:[ key k k ]
         (fun () -> Blas.potrf_lower (Tiled.tile a k k)));
    for m = k + 1 to ntiles - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "TRSM(%d,%d)" m k)
           ~reads:[ key k k ] ~writes:[ key m k ]
           (fun () -> Blas.trsm_right_lower_trans ~l:(Tiled.tile a k k) (Tiled.tile a m k)))
    done;
    for m = k + 1 to ntiles - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "SYRK(%d,%d)" m k)
           ~reads:[ key m k ] ~writes:[ key m m ]
           (fun () ->
             Blas.syrk_lower ~alpha:(-1.) (Tiled.tile a m k) ~beta:1. (Tiled.tile a m m)));
      for nn = k + 1 to m - 1 do
        ignore
          (Dtd.insert g
             ~name:(Printf.sprintf "GEMM(%d,%d,%d)" m nn k)
             ~reads:[ key m k; key nn k ]
             ~writes:[ key m nn ]
             (fun () ->
               Blas.gemm_nt ~alpha:(-1.) (Tiled.tile a m k) (Tiled.tile a nn k) ~beta:1.
                 (Tiled.tile a m nn)))
      done
    done
  done;
  g

let test_cholesky_via_dtd () =
  let n = 96 and nb = 24 in
  let dense =
    Mat.init ~rows:n ~cols:n (fun i j ->
      (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
  in
  let check_factorization a =
    Tiled.iter_lower a (fun ~i ~j tile -> if i = j then Mat.zero_upper tile);
    let l = Tiled.to_dense a in
    Mat.zero_upper l;
    Check.cholesky_residual ~a:dense ~l < 1e-13
  in
  let a = Tiled.of_dense ~nb dense in
  let g = build_cholesky_dtd a in
  (* Same task count as the PTG-style DAG. *)
  let dag = Cholesky_dag.create ~nt:(Tiled.nt a) in
  Alcotest.(check int) "task count" (Cholesky_dag.num_tasks dag) (Dtd.num_tasks g);
  Pool.with_pool ~num_workers:3 (fun pool -> Dtd.execute ~pool g);
  Alcotest.(check bool) "factorization correct (pool)" true (check_factorization a);
  (* Replay the same program under seeded interleavings: the bodies mutate
     the tiles, so each schedule factorizes a fresh copy of the matrix. *)
  for seed = 0 to 2 do
    let a = Tiled.of_dense ~nb dense in
    let g = build_cholesky_dtd a in
    ignore (Explore.run_random (Explore.of_dtd g) ~seed ~execute:(Dtd.execute_task g));
    Alcotest.(check bool)
      (Printf.sprintf "factorization correct (seed %d)" seed)
      true (check_factorization a)
  done

let prop_execution_order_valid =
  QCheck.Test.make ~name:"every pred finished before a task runs" ~count:30
    (QCheck.int_range 1 80)
    (fun ntasks ->
      let rng = Rng.create ~seed:ntasks in
      let g = Dtd.create () in
      let done_ = Array.make ntasks (Atomic.make false) in
      for i = 0 to ntasks - 1 do
        done_.(i) <- Atomic.make false
      done;
      let ok = Atomic.make true in
      for i = 0 to ntasks - 1 do
        let reads = List.init (Rng.int rng 2) (fun _ -> Rng.int rng 8) in
        let writes = [ Rng.int rng 8 ] in
        ignore
          (Dtd.insert g ~name:"t" ~reads ~writes (fun () ->
             List.iter
               (fun p -> if not (Atomic.get done_.(p)) then Atomic.set ok false)
               (Dtd.predecessors g i);
             Atomic.set done_.(i) true))
      done;
      Pool.with_pool ~num_workers:2 (fun pool -> Dtd.execute ~pool g);
      (* Replay the same graph under seeded interleavings — the explorer
         must uphold the same invariant on schedules the pool never took. *)
      Explore.for_each_seed ~seeds:5 (Explore.of_dtd g) (fun ~seed:_ order ->
        Array.iteri (fun i _ -> Atomic.set done_.(i) false) done_;
        Array.iter (Dtd.execute_task g) order);
      Atomic.get ok)

let () =
  Alcotest.run "dtd"
    [
      ( "dependence derivation",
        [
          Alcotest.test_case "RAW" `Quick test_raw_dependency;
          Alcotest.test_case "WAR" `Quick test_war_dependency;
          Alcotest.test_case "WAW chain" `Quick test_waw_chain;
          Alcotest.test_case "independent" `Quick test_independent_tasks;
          Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers_allowed;
          Alcotest.test_case "acyclic" `Quick test_graph_acyclic;
          Alcotest.test_case "in-degree consistency" `Quick test_in_degree_consistency;
        ] );
      ( "execution",
        [
          Alcotest.test_case "sequential semantics" `Quick test_execution_sequential_semantics;
          Alcotest.test_case "cholesky via DTD" `Quick test_cholesky_via_dtd;
          QCheck_alcotest.to_alcotest prop_execution_order_valid;
        ] );
    ]
