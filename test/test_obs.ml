(* The observability layer: metrics registry semantics (histogram edge
   cases, snapshot/diff algebra), the Jsonlite/Bench_json pipeline behind
   the CI regression gate, the instrumented pool, and the property that
   DTD bytes-on-the-wire accounting is a pure function of the inserted
   program — identical under every schedule the derived DAG admits. *)

module M = Geomix_obs.Metrics
module J = Geomix_obs.Jsonlite
module B = Geomix_obs.Bench_json
module Pool = Geomix_parallel.Pool
module Dtd = Geomix_runtime.Dtd
module Gen = Geomix_verify.Gen
module Explore = Geomix_verify.Explore

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let hist_of = function
  | Some (M.Histogram h) -> h
  | _ -> Alcotest.fail "expected a histogram"

let counter_of = function
  | Some (M.Counter c) -> c
  | _ -> Alcotest.fail "expected a counter"

let gauge_of = function
  | Some (M.Gauge g) -> g
  | _ -> Alcotest.fail "expected a gauge"

(* Counters and gauges *)

let test_counter_basics () =
  let t = M.create () in
  let c = M.counter t "c" in
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "value" 42 (M.counter_value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () -> M.add c (-1));
  (* Re-requesting the name returns the same cell... *)
  M.incr (M.counter t "c");
  Alcotest.(check int) "shared cell" 43 (M.counter_value c);
  (* ...and a kind clash is an error, not a shadow. *)
  Alcotest.(check bool) "kind clash" true
    (try
       ignore (M.gauge t "c");
       false
     with Invalid_argument _ -> true)

let test_gauge_set_max () =
  let t = M.create () in
  let g = M.gauge t "g" in
  M.set g 3.;
  M.set_max g 1.;
  Alcotest.(check (float 0.)) "max keeps larger" 3. (M.gauge_value g);
  M.set_max g 7.;
  Alcotest.(check (float 0.)) "max raises" 7. (M.gauge_value g);
  M.set g 2.;
  Alcotest.(check (float 0.)) "set overwrites" 2. (M.gauge_value g)

(* Histogram bucketing edge cases *)

let test_histogram_edges () =
  let t = M.create () in
  let h = M.histogram t "h" in
  (* default lo = 1e-6 over 12 decades: top edge 1e6 *)
  M.observe h 0.;
  M.observe h (-3.);
  M.observe h 5e-7;
  (* sub-lo *)
  M.observe h 1e-6;
  (* exactly lo: first bucket *)
  M.observe h 0.5;
  (* mid-range *)
  M.observe h 1e6;
  (* exactly the top edge: overflow *)
  M.observe h 1e10 (* beyond *);
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check int) "underflow" 3 s.M.underflow;
  Alcotest.(check int) "overflow" 2 s.M.overflow;
  Alcotest.(check int) "count" 7 s.M.count;
  Alcotest.(check (float 0.)) "min" (-3.) s.M.min_v;
  Alcotest.(check (float 0.)) "max" 1e10 s.M.max_v;
  let in_bucket = Array.fold_left (fun acc (_, c) -> acc + c) 0 s.M.buckets in
  Alcotest.(check int) "bucketed = count - under - over" 2 in_bucket

let test_histogram_bucket_bounds () =
  (* Every observed value must land in a bucket whose bounds contain it. *)
  let t = M.create () in
  let h = M.histogram ~lo:1e-3 ~decades:3 ~per_decade:5 t "h" in
  let values = [ 1e-3; 2.3e-3; 0.04; 0.09; 0.5; 0.999 ] in
  List.iter (M.observe h) values;
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check int) "no under/over" 0 (s.M.underflow + s.M.overflow);
  (* Reconstruct the per-bucket lower bounds and check containment. *)
  Array.iteri
    (fun i (upper, cnt) ->
      if cnt > 0 then begin
        let lower = if i = 0 then s.M.lo else fst s.M.buckets.(i - 1) in
        let inside = List.filter (fun v -> v >= lower && v < upper) values in
        Alcotest.(check int)
          (Printf.sprintf "bucket [%g, %g)" lower upper)
          (List.length inside) cnt
      end)
    s.M.buckets

let test_histogram_stats () =
  let t = M.create () in
  let h = M.histogram t "h" in
  List.iter (M.observe h) [ 0.1; 0.2; 0.3; 0.4 ];
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check (float 1e-12)) "sum" 1.0 s.M.sum;
  Alcotest.(check (float 1e-12)) "mean" 0.25 (M.mean s);
  (* All mass in two adjacent decades: the median must sit between the
     extremes, within bucket resolution (10^(1/4) ≈ 1.78x). *)
  let p50 = M.quantile s 0.5 in
  Alcotest.(check bool) "p50 in range" true (p50 >= 0.1 && p50 <= 0.4 *. 1.78)

let test_quantile_edge_cases () =
  let t = M.create () in
  let h = M.histogram t "h" in
  let s0 = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check bool) "empty quantile nan" true (Float.is_nan (M.quantile s0 0.5));
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (M.mean s0));
  M.observe h 0.;
  (* underflow only *)
  let s1 = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check (float 0.)) "underflow quantile" 0. (M.quantile s1 0.5);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (M.quantile s1 1.5);
       false
     with Invalid_argument _ -> true)

let test_span_timer () =
  let t = M.create () in
  let h = M.histogram t "h" in
  let r = M.time h (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  (try M.time h (fun () -> failwith "boom") with Failure _ -> ());
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check int) "records also on exception" 2 s.M.count;
  Alcotest.(check bool) "durations non-negative" true (s.M.min_v >= 0.)

(* Snapshot / diff algebra *)

let test_snapshot_diff () =
  let t = M.create () in
  let c = M.counter t "c" and g = M.gauge t "g" and h = M.histogram t "h" in
  M.add c 5;
  M.set g 1.;
  M.observe h 0.5;
  let s0 = M.snapshot t in
  M.add c 3;
  M.set g 9.;
  M.observe h 0.25;
  M.observe h 0.75;
  let s1 = M.snapshot t in
  let d = M.diff s1 s0 in
  Alcotest.(check int) "counter delta" 3 (counter_of (M.find d "c"));
  Alcotest.(check (float 0.)) "gauge keeps after" 9. (gauge_of (M.find d "g"));
  let dh = hist_of (M.find d "h") in
  Alcotest.(check int) "hist count delta" 2 dh.M.count;
  Alcotest.(check (float 1e-12)) "hist sum delta" 1.0 dh.M.sum;
  (* diff with itself zeroes every population *)
  let z = M.diff s1 s1 in
  Alcotest.(check int) "self counter" 0 (counter_of (M.find z "c"));
  Alcotest.(check int) "self hist" 0 (hist_of (M.find z "h")).M.count

let test_exporters_cover_all_metrics () =
  let t = M.create () in
  M.add (M.counter t "a.count") 2;
  M.set (M.gauge t "b.gauge") 1.5;
  M.observe (M.histogram t "c.hist") 0.1;
  let s = M.snapshot t in
  let table = M.to_table s and csv = M.to_csv s in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("table has " ^ name) true (contains ~affix:name table);
      Alcotest.(check bool) ("csv has " ^ name) true (contains ~affix:name csv))
    [ "a.count"; "b.gauge"; "c.hist" ];
  (* JSON export round-trips through the parser. *)
  match J.of_string (M.to_json_string s) with
  | Error e -> Alcotest.fail e
  | Ok (J.Obj entries) -> Alcotest.(check int) "three entries" 3 (List.length entries)
  | Ok _ -> Alcotest.fail "snapshot JSON is not an object"

(* Jsonlite *)

let test_jsonlite_roundtrip () =
  let tree =
    J.Obj
      [
        ("s", J.Str "he\"llo\n\t");
        ("n", J.Num 2.5);
        ("neg", J.Num (-17.));
        ("b", J.Bool true);
        ("z", J.Null);
        ("a", J.Arr [ J.Num 1.; J.Str "x"; J.Obj [] ]);
      ]
  in
  (match J.of_string (J.to_string tree) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check bool) "roundtrip" true (back = tree));
  match J.of_string (J.to_string ~indent:true tree) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check bool) "indented roundtrip" true (back = tree)

let test_jsonlite_errors () =
  List.iter
    (fun src ->
      match J.of_string src with
      | Ok _ -> Alcotest.failf "parsed %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

(* Bench_json and the regression gate *)

let test_bench_json_roundtrip () =
  let bench =
    B.make ~suite:"s"
      [
        B.metric ~units:"s" "makespan" 1.25;
        B.metric ~units:"Tflop/s" ~direction:B.Higher_is_better "tflops" 42.;
      ]
  in
  match B.of_json_string (B.to_json_string bench) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "schema" B.schema_version back.B.schema_version;
    Alcotest.(check string) "suite" "s" back.B.suite;
    Alcotest.(check bool) "metrics equal" true (back.B.metrics = bench.B.metrics)

let test_regression_gate_directions () =
  let base =
    B.make ~suite:"s"
      [
        B.metric "lower" 100.;
        B.metric ~direction:B.Higher_is_better "higher" 100.;
        B.metric "gone" 1.;
      ]
  in
  let gate low high =
    let current =
      B.make ~suite:"s"
        [ B.metric "lower" low; B.metric ~direction:B.Higher_is_better "higher" high ]
    in
    B.compare ~tolerance:0.2 ~baseline:base ~current
  in
  (* Within tolerance in the bad direction: ok. *)
  Alcotest.(check bool) "within" false (B.any_regressed (gate 115. 85.));
  (* Improvements are never regressions, however large. *)
  Alcotest.(check bool) "improve" false (B.any_regressed (gate 1. 1000.));
  (* Past tolerance the right metric trips. *)
  let v = gate 121. 100. in
  Alcotest.(check bool) "lower trips" true B.(any_regressed v);
  Alcotest.(check bool) "only lower" true
    (List.for_all (fun x -> x.B.regressed = (x.B.metric_name = "lower")) v);
  Alcotest.(check bool) "higher trips" true (B.any_regressed (gate 100. 79.));
  (* Metrics missing from current are skipped, not failures. *)
  Alcotest.(check int) "gone skipped" 2 (List.length v);
  Alcotest.(check bool) "report mentions verdicts" true
    (contains ~affix:"REGRESSED" (B.report_verdicts v))

let test_bench_json_file_io () =
  let path = Filename.temp_file "geomix_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let bench = B.make ~suite:"io" [ B.metric "m" 3.5 ] in
      B.write ~path bench;
      match B.read ~path with
      | Error e -> Alcotest.fail e
      | Ok back -> Alcotest.(check bool) "file roundtrip" true (back.B.metrics = bench.B.metrics))

(* Instrumented pool *)

let test_pool_obs () =
  let reg = M.create () in
  let total = 57 in
  Pool.with_pool ~obs:reg ~num_workers:2 (fun pool ->
    for _ = 1 to total do
      Pool.submit pool (fun () -> ignore (Sys.opaque_identity (ref 0)))
    done;
    Pool.wait_idle pool);
  let s = M.snapshot reg in
  Alcotest.(check int) "tasks" total (counter_of (M.find s "pool.tasks"));
  Alcotest.(check (float 0.)) "workers" 2. (gauge_of (M.find s "pool.workers"));
  Alcotest.(check int) "wait observations" total
    (hist_of (M.find s "pool.queue_wait_s")).M.count;
  Alcotest.(check int) "run observations" total (hist_of (M.find s "pool.run_s")).M.count;
  let per_worker =
    (counter_of (M.find s "pool.worker0.tasks"))
    + counter_of (M.find s "pool.worker1.tasks")
  in
  Alcotest.(check int) "worker counters sum" total per_worker;
  Alcotest.(check bool) "queue peak positive" true
    (gauge_of (M.find s "pool.queue_peak") >= 1.)

let test_pool_obs_serial () =
  let reg = M.create () in
  Pool.with_pool ~obs:reg ~num_workers:0 (fun pool ->
    for _ = 1 to 5 do
      Pool.submit pool (fun () -> ())
    done;
    Pool.wait_idle pool);
  let s = M.snapshot reg in
  Alcotest.(check int) "serial tasks" 5 (counter_of (M.find s "pool.tasks"));
  Alcotest.(check int) "serial worker0" 5 (counter_of (M.find s "pool.worker0.tasks"))

(* DTD byte accounting: recorded = declared, under every schedule *)

let datum_bytes k = (k mod 7) + 1

let test_dtd_obs_matches_comm_volume () =
  let t = Dtd.create () in
  (* A small chain with a broadcast: 0 writes {0,1}; 1 and 2 read them. *)
  ignore (Dtd.insert t ~name:"w" ~reads:[] ~writes:[ 0; 1 ] (fun () -> ()));
  ignore (Dtd.insert t ~name:"r1" ~reads:[ 0; 1 ] ~writes:[ 2 ] (fun () -> ()));
  ignore (Dtd.insert t ~name:"r2" ~reads:[ 0; 2 ] ~writes:[] (fun () -> ()));
  let declared = Dtd.comm_volume ~datum_bytes t in
  (* RAW edges: r1←w on 0 and 1; r2←w on 0, r2←r1 on 2. *)
  Alcotest.(check int) "declared volume" (1 + 2 + 1 + 3) declared;
  let reg = M.create () in
  Dtd.execute ~obs:reg ~datum_bytes t;
  let s = M.snapshot reg in
  Alcotest.(check int) "recorded bytes" declared (counter_of (M.find s "dtd.raw_bytes"));
  Alcotest.(check int) "recorded edges" 4 (counter_of (M.find s "dtd.raw_edges"));
  Alcotest.(check int) "recorded tasks" 3 (counter_of (M.find s "dtd.tasks"))

let prop_bytes_schedule_independent =
  QCheck.Test.make ~name:"bytes-on-the-wire identical across interleavings" ~count:40
    (Gen.program_spec ~max_ops:18 ~max_keys:6 ())
    (fun spec ->
      let program = Gen.program_of_spec spec in
      let t = Gen.dtd_of_program program in
      let declared = Dtd.comm_volume ~datum_bytes t in
      let graph = Explore.of_dtd t in
      let ok = ref true in
      Explore.for_each_seed ~seeds:8 graph (fun ~seed:_ order ->
        (* Sum the fetch volume in execution order: the accumulation order
           changes with the schedule, the total must not. *)
        let total = ref 0 in
        Explore.run_schedule graph ~order ~execute:(fun id ->
          total := !total + Dtd.task_in_bytes ~datum_bytes t id);
        if !total <> declared then ok := false);
      !ok)

let prop_dtd_obs_schedule_independent =
  QCheck.Test.make ~name:"executed dtd.raw_bytes equals declared comm_volume" ~count:25
    (Gen.program_spec ~max_ops:12 ~max_keys:5 ())
    (fun spec ->
      let t = Gen.dtd_of_program (Gen.program_of_spec spec) in
      let reg = M.create () in
      Dtd.execute ~obs:reg ~datum_bytes t;
      match M.find (M.snapshot reg) "dtd.raw_bytes" with
      | Some (M.Counter b) -> b = Dtd.comm_volume ~datum_bytes t
      | _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge set/set_max" `Quick test_gauge_set_max;
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "bucket bounds contain values" `Quick test_histogram_bucket_bounds;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edge_cases;
          Alcotest.test_case "span timer" `Quick test_span_timer;
          Alcotest.test_case "snapshot/diff algebra" `Quick test_snapshot_diff;
          Alcotest.test_case "exporters" `Quick test_exporters_cover_all_metrics;
        ] );
      ( "jsonlite",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonlite_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_jsonlite_errors;
        ] );
      ( "bench gate",
        [
          Alcotest.test_case "json roundtrip" `Quick test_bench_json_roundtrip;
          Alcotest.test_case "gate directions" `Quick test_regression_gate_directions;
          Alcotest.test_case "file io" `Quick test_bench_json_file_io;
        ] );
      ( "instrumented executors",
        [
          Alcotest.test_case "pool metrics" `Quick test_pool_obs;
          Alcotest.test_case "serial pool metrics" `Quick test_pool_obs_serial;
          Alcotest.test_case "dtd bytes recorded" `Quick test_dtd_obs_matches_comm_volume;
          QCheck_alcotest.to_alcotest prop_bytes_schedule_independent;
          QCheck_alcotest.to_alcotest prop_dtd_obs_schedule_independent;
        ] );
    ]
