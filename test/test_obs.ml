(* The observability layer: metrics registry semantics (histogram edge
   cases, snapshot/diff algebra), the Jsonlite/Bench_json pipeline behind
   the CI regression gate, the instrumented pool, and the property that
   DTD bytes-on-the-wire accounting is a pure function of the inserted
   program — identical under every schedule the derived DAG admits. *)

module M = Geomix_obs.Metrics
module J = Geomix_obs.Jsonlite
module B = Geomix_obs.Bench_json
module Pool = Geomix_parallel.Pool
module Dtd = Geomix_runtime.Dtd
module Gen = Geomix_verify.Gen
module Explore = Geomix_verify.Explore

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let hist_of = function
  | Some (M.Histogram h) -> h
  | _ -> Alcotest.fail "expected a histogram"

let counter_of = function
  | Some (M.Counter c) -> c
  | _ -> Alcotest.fail "expected a counter"

let gauge_of = function
  | Some (M.Gauge g) -> g
  | _ -> Alcotest.fail "expected a gauge"

(* Counters and gauges *)

let test_counter_basics () =
  let t = M.create () in
  let c = M.counter t "c" in
  M.incr c;
  M.add c 41;
  Alcotest.(check int) "value" 42 (M.counter_value c);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () -> M.add c (-1));
  (* Re-requesting the name returns the same cell... *)
  M.incr (M.counter t "c");
  Alcotest.(check int) "shared cell" 43 (M.counter_value c);
  (* ...and a kind clash is an error, not a shadow. *)
  Alcotest.(check bool) "kind clash" true
    (try
       ignore (M.gauge t "c");
       false
     with Invalid_argument _ -> true)

let test_gauge_set_max () =
  let t = M.create () in
  let g = M.gauge t "g" in
  M.set g 3.;
  M.set_max g 1.;
  Alcotest.(check (float 0.)) "max keeps larger" 3. (M.gauge_value g);
  M.set_max g 7.;
  Alcotest.(check (float 0.)) "max raises" 7. (M.gauge_value g);
  M.set g 2.;
  Alcotest.(check (float 0.)) "set overwrites" 2. (M.gauge_value g)

(* Histogram bucketing edge cases *)

let test_histogram_edges () =
  let t = M.create () in
  let h = M.histogram t "h" in
  (* default lo = 1e-6 over 12 decades: top edge 1e6 *)
  M.observe h 0.;
  M.observe h (-3.);
  M.observe h 5e-7;
  (* sub-lo *)
  M.observe h 1e-6;
  (* exactly lo: first bucket *)
  M.observe h 0.5;
  (* mid-range *)
  M.observe h 1e6;
  (* exactly the top edge: overflow *)
  M.observe h 1e10 (* beyond *);
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check int) "underflow" 3 s.M.underflow;
  Alcotest.(check int) "overflow" 2 s.M.overflow;
  Alcotest.(check int) "count" 7 s.M.count;
  Alcotest.(check (float 0.)) "min" (-3.) s.M.min_v;
  Alcotest.(check (float 0.)) "max" 1e10 s.M.max_v;
  let in_bucket = Array.fold_left (fun acc (_, c) -> acc + c) 0 s.M.buckets in
  Alcotest.(check int) "bucketed = count - under - over" 2 in_bucket

let test_histogram_bucket_bounds () =
  (* Every observed value must land in a bucket whose bounds contain it. *)
  let t = M.create () in
  let h = M.histogram ~lo:1e-3 ~decades:3 ~per_decade:5 t "h" in
  let values = [ 1e-3; 2.3e-3; 0.04; 0.09; 0.5; 0.999 ] in
  List.iter (M.observe h) values;
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check int) "no under/over" 0 (s.M.underflow + s.M.overflow);
  (* Reconstruct the per-bucket lower bounds and check containment. *)
  Array.iteri
    (fun i (upper, cnt) ->
      if cnt > 0 then begin
        let lower = if i = 0 then s.M.lo else fst s.M.buckets.(i - 1) in
        let inside = List.filter (fun v -> v >= lower && v < upper) values in
        Alcotest.(check int)
          (Printf.sprintf "bucket [%g, %g)" lower upper)
          (List.length inside) cnt
      end)
    s.M.buckets

let test_histogram_stats () =
  let t = M.create () in
  let h = M.histogram t "h" in
  List.iter (M.observe h) [ 0.1; 0.2; 0.3; 0.4 ];
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check (float 1e-12)) "sum" 1.0 s.M.sum;
  Alcotest.(check (float 1e-12)) "mean" 0.25 (M.mean s);
  (* All mass in two adjacent decades: the median must sit between the
     extremes, within bucket resolution (10^(1/4) ≈ 1.78x). *)
  let p50 = M.quantile s 0.5 in
  Alcotest.(check bool) "p50 in range" true (p50 >= 0.1 && p50 <= 0.4 *. 1.78)

let test_quantile_edge_cases () =
  let t = M.create () in
  let h = M.histogram t "h" in
  let s0 = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check bool) "empty quantile nan" true (Float.is_nan (M.quantile s0 0.5));
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (M.mean s0));
  M.observe h 0.;
  (* underflow only *)
  let s1 = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check (float 0.)) "underflow quantile" 0. (M.quantile s1 0.5);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (M.quantile s1 1.5);
       false
     with Invalid_argument _ -> true);
  (* All mass in one bucket: every quantile collapses to that bucket's
     bounds, so p01 and p99 agree within one bucket's resolution. *)
  let h2 = M.histogram t "h2" in
  for _ = 1 to 100 do
    M.observe h2 0.42
  done;
  let s2 = hist_of (M.find (M.snapshot t) "h2") in
  let p01 = M.quantile s2 0.01 and p99 = M.quantile s2 0.99 in
  Alcotest.(check bool) "single-bucket p01 brackets the value" true
    (p01 <= 0.42 *. 1.78 && p99 >= 0.42 /. 1.78);
  Alcotest.(check bool) "single-bucket quantiles agree" true
    (p99 <= p01 *. 1.7782794100389228 +. 1e-12);
  (* Sparse mass across distant log buckets: p99 must land in the top
     populated bucket, p50 in the bottom one — cumulative counting must
     not smear across the empty decades between them. *)
  let h3 = M.histogram t "h3" in
  for _ = 1 to 99 do
    M.observe h3 1e-3
  done;
  M.observe h3 10.;
  let s3 = hist_of (M.find (M.snapshot t) "h3") in
  Alcotest.(check bool) "sparse p50 stays in the low bucket" true
    (M.quantile s3 0.50 <= 1e-3 *. 1.78);
  Alcotest.(check bool) "sparse p99 stays low (99/100 below)" true
    (M.quantile s3 0.99 <= 1e-3 *. 1.78);
  Alcotest.(check bool) "sparse p995 jumps to the top bucket" true
    (M.quantile s3 0.995 >= 10. /. 1.78);
  Alcotest.(check bool) "p100 caps at max bucket" true
    (M.quantile s3 1.0 >= 10. /. 1.78)

let test_span_timer () =
  let t = M.create () in
  let h = M.histogram t "h" in
  let r = M.time h (fun () -> 42) in
  Alcotest.(check int) "result" 42 r;
  (try M.time h (fun () -> failwith "boom") with Failure _ -> ());
  let s = hist_of (M.find (M.snapshot t) "h") in
  Alcotest.(check int) "records also on exception" 2 s.M.count;
  Alcotest.(check bool) "durations non-negative" true (s.M.min_v >= 0.)

(* Snapshot / diff algebra *)

let test_snapshot_diff () =
  let t = M.create () in
  let c = M.counter t "c" and g = M.gauge t "g" and h = M.histogram t "h" in
  M.add c 5;
  M.set g 1.;
  M.observe h 0.5;
  let s0 = M.snapshot t in
  M.add c 3;
  M.set g 9.;
  M.observe h 0.25;
  M.observe h 0.75;
  let s1 = M.snapshot t in
  let d = M.diff s1 s0 in
  Alcotest.(check int) "counter delta" 3 (counter_of (M.find d "c"));
  Alcotest.(check (float 0.)) "gauge keeps after" 9. (gauge_of (M.find d "g"));
  let dh = hist_of (M.find d "h") in
  Alcotest.(check int) "hist count delta" 2 dh.M.count;
  Alcotest.(check (float 1e-12)) "hist sum delta" 1.0 dh.M.sum;
  (* diff with itself zeroes every population *)
  let z = M.diff s1 s1 in
  Alcotest.(check int) "self counter" 0 (counter_of (M.find z "c"));
  Alcotest.(check int) "self hist" 0 (hist_of (M.find z "h")).M.count

let test_exporters_cover_all_metrics () =
  let t = M.create () in
  M.add (M.counter t "a.count") 2;
  M.set (M.gauge t "b.gauge") 1.5;
  M.observe (M.histogram t "c.hist") 0.1;
  let s = M.snapshot t in
  let table = M.to_table s and csv = M.to_csv s in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("table has " ^ name) true (contains ~affix:name table);
      Alcotest.(check bool) ("csv has " ^ name) true (contains ~affix:name csv))
    [ "a.count"; "b.gauge"; "c.hist" ];
  (* JSON export round-trips through the parser. *)
  match J.of_string (M.to_json_string s) with
  | Error e -> Alcotest.fail e
  | Ok (J.Obj entries) -> Alcotest.(check int) "three entries" 3 (List.length entries)
  | Ok _ -> Alcotest.fail "snapshot JSON is not an object"

(* Jsonlite *)

let test_jsonlite_roundtrip () =
  let tree =
    J.Obj
      [
        ("s", J.Str "he\"llo\n\t");
        ("n", J.Num 2.5);
        ("neg", J.Num (-17.));
        ("b", J.Bool true);
        ("z", J.Null);
        ("a", J.Arr [ J.Num 1.; J.Str "x"; J.Obj [] ]);
      ]
  in
  (match J.of_string (J.to_string tree) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check bool) "roundtrip" true (back = tree));
  match J.of_string (J.to_string ~indent:true tree) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check bool) "indented roundtrip" true (back = tree)

let test_jsonlite_errors () =
  List.iter
    (fun src ->
      match J.of_string src with
      | Ok _ -> Alcotest.failf "parsed %S" src
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

(* Bench_json and the regression gate *)

let test_bench_json_roundtrip () =
  let bench =
    B.make ~suite:"s"
      [
        B.metric ~units:"s" "makespan" 1.25;
        B.metric ~units:"Tflop/s" ~direction:B.Higher_is_better "tflops" 42.;
      ]
  in
  match B.of_json_string (B.to_json_string bench) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check int) "schema" B.schema_version back.B.schema_version;
    Alcotest.(check string) "suite" "s" back.B.suite;
    Alcotest.(check bool) "metrics equal" true (back.B.metrics = bench.B.metrics)

let test_regression_gate_directions () =
  let base =
    B.make ~suite:"s"
      [
        B.metric "lower" 100.;
        B.metric ~direction:B.Higher_is_better "higher" 100.;
        B.metric "gone" 1.;
      ]
  in
  let gate low high =
    let current =
      B.make ~suite:"s"
        [ B.metric "lower" low; B.metric ~direction:B.Higher_is_better "higher" high ]
    in
    B.compare ~tolerance:0.2 ~baseline:base ~current ()
  in
  (* Within tolerance in the bad direction: ok. *)
  Alcotest.(check bool) "within" false (B.any_regressed (gate 115. 85.));
  (* Improvements are never regressions, however large. *)
  Alcotest.(check bool) "improve" false (B.any_regressed (gate 1. 1000.));
  (* Past tolerance the right metric trips. *)
  let v = gate 121. 100. in
  Alcotest.(check bool) "lower trips" true B.(any_regressed v);
  Alcotest.(check bool) "only lower" true
    (List.for_all (fun x -> x.B.regressed = (x.B.metric_name = "lower")) v);
  Alcotest.(check bool) "higher trips" true (B.any_regressed (gate 100. 79.));
  (* Even a wide (300%) tolerance keeps a real floor for higher-is-better
     metrics: the bound is baseline/(1+tol) = 25, not the vacuous
     baseline·(1−tol) < 0. *)
  let wide high =
    let current =
      B.make ~suite:"s"
        [ B.metric "lower" 100.; B.metric ~direction:B.Higher_is_better "higher" high ]
    in
    B.any_regressed (B.compare ~tolerance:3.0 ~baseline:base ~current ())
  in
  Alcotest.(check bool) "wide tolerance trips below floor" true (wide 20.);
  Alcotest.(check bool) "wide tolerance holds above floor" false (wide 30.);
  (* Metrics missing from current are skipped, not failures. *)
  Alcotest.(check int) "gone skipped" 2 (List.length v);
  Alcotest.(check bool) "report mentions verdicts" true
    (contains ~affix:"REGRESSED" (B.report_verdicts v))

let test_regression_gate_expect () =
  let base =
    B.make ~suite:"s"
      [ B.metric "owned_a" 10.; B.metric "owned_gone" 5.; B.metric "other" 1. ]
  in
  let current = B.make ~suite:"s" [ B.metric "owned_a" 10. ] in
  let expect n = String.length n >= 6 && String.sub n 0 6 = "owned_" in
  (* Without the predicate both absences are subset-gate skips. *)
  let plain = B.compare ~tolerance:0.2 ~baseline:base ~current () in
  Alcotest.(check bool) "default skips" false (B.any_regressed plain);
  Alcotest.(check int) "default verdict count" 1 (List.length plain);
  (* With it, an owned metric missing from the candidate is a failure with
     an explicit name; foreign absences still skip. *)
  let v = B.compare ~expect ~tolerance:0.2 ~baseline:base ~current () in
  Alcotest.(check bool) "expected absence trips" true (B.any_regressed v);
  Alcotest.(check (list string)) "missing named" [ "owned_gone" ] (B.missing v);
  Alcotest.(check int) "foreign absence still skipped" 2 (List.length v);
  Alcotest.(check bool) "report marks it" true
    (contains ~affix:"MISSING FROM CANDIDATE" (B.report_verdicts v));
  (* A candidate that emits everything it owns passes untouched. *)
  let full =
    B.make ~suite:"s" [ B.metric "owned_a" 10.; B.metric "owned_gone" 5. ]
  in
  Alcotest.(check bool) "complete candidate passes" false
    (B.any_regressed (B.compare ~expect ~tolerance:0.2 ~baseline:base ~current:full ()))

let test_bench_json_file_io () =
  let path = Filename.temp_file "geomix_bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let bench = B.make ~suite:"io" [ B.metric "m" 3.5 ] in
      B.write ~path bench;
      match B.read ~path with
      | Error e -> Alcotest.fail e
      | Ok back -> Alcotest.(check bool) "file roundtrip" true (back.B.metrics = bench.B.metrics))

(* Instrumented pool *)

let test_pool_obs () =
  let reg = M.create () in
  let total = 57 in
  Pool.with_pool ~obs:reg ~num_workers:2 (fun pool ->
    for _ = 1 to total do
      Pool.submit pool (fun () -> ignore (Sys.opaque_identity (ref 0)))
    done;
    Pool.wait_idle pool);
  let s = M.snapshot reg in
  Alcotest.(check int) "tasks" total (counter_of (M.find s "pool.tasks"));
  Alcotest.(check (float 0.)) "workers" 2. (gauge_of (M.find s "pool.workers"));
  Alcotest.(check int) "wait observations" total
    (hist_of (M.find s "pool.queue_wait_s")).M.count;
  Alcotest.(check int) "run observations" total (hist_of (M.find s "pool.run_s")).M.count;
  let per_worker =
    (counter_of (M.find s "pool.worker0.tasks"))
    + counter_of (M.find s "pool.worker1.tasks")
  in
  Alcotest.(check int) "worker counters sum" total per_worker;
  Alcotest.(check bool) "queue peak positive" true
    (gauge_of (M.find s "pool.queue_peak") >= 1.)

let test_pool_obs_serial () =
  let reg = M.create () in
  Pool.with_pool ~obs:reg ~num_workers:0 (fun pool ->
    for _ = 1 to 5 do
      Pool.submit pool (fun () -> ())
    done;
    Pool.wait_idle pool);
  let s = M.snapshot reg in
  Alcotest.(check int) "serial tasks" 5 (counter_of (M.find s "pool.tasks"));
  Alcotest.(check int) "serial worker0" 5 (counter_of (M.find s "pool.worker0.tasks"))

(* DTD byte accounting: recorded = declared, under every schedule *)

let datum_bytes k = (k mod 7) + 1

let test_dtd_obs_matches_comm_volume () =
  let t = Dtd.create () in
  (* A small chain with a broadcast: 0 writes {0,1}; 1 and 2 read them. *)
  ignore (Dtd.insert t ~name:"w" ~reads:[] ~writes:[ 0; 1 ] (fun () -> ()));
  ignore (Dtd.insert t ~name:"r1" ~reads:[ 0; 1 ] ~writes:[ 2 ] (fun () -> ()));
  ignore (Dtd.insert t ~name:"r2" ~reads:[ 0; 2 ] ~writes:[] (fun () -> ()));
  let declared = Dtd.comm_volume ~datum_bytes t in
  (* RAW edges: r1←w on 0 and 1; r2←w on 0, r2←r1 on 2. *)
  Alcotest.(check int) "declared volume" (1 + 2 + 1 + 3) declared;
  let reg = M.create () in
  Dtd.execute ~obs:reg ~datum_bytes t;
  let s = M.snapshot reg in
  Alcotest.(check int) "recorded bytes" declared (counter_of (M.find s "dtd.raw_bytes"));
  Alcotest.(check int) "recorded edges" 4 (counter_of (M.find s "dtd.raw_edges"));
  Alcotest.(check int) "recorded tasks" 3 (counter_of (M.find s "dtd.tasks"))

let prop_bytes_schedule_independent =
  QCheck.Test.make ~name:"bytes-on-the-wire identical across interleavings" ~count:40
    (Gen.program_spec ~max_ops:18 ~max_keys:6 ())
    (fun spec ->
      let program = Gen.program_of_spec spec in
      let t = Gen.dtd_of_program program in
      let declared = Dtd.comm_volume ~datum_bytes t in
      let graph = Explore.of_dtd t in
      let ok = ref true in
      Explore.for_each_seed ~seeds:8 graph (fun ~seed:_ order ->
        (* Sum the fetch volume in execution order: the accumulation order
           changes with the schedule, the total must not. *)
        let total = ref 0 in
        Explore.run_schedule graph ~order ~execute:(fun id ->
          total := !total + Dtd.task_in_bytes ~datum_bytes t id);
        if !total <> declared then ok := false);
      !ok)

let prop_dtd_obs_schedule_independent =
  QCheck.Test.make ~name:"executed dtd.raw_bytes equals declared comm_volume" ~count:25
    (Gen.program_spec ~max_ops:12 ~max_keys:5 ())
    (fun spec ->
      let t = Gen.dtd_of_program (Gen.program_of_spec spec) in
      let reg = M.create () in
      Dtd.execute ~obs:reg ~datum_bytes t;
      match M.find (M.snapshot reg) "dtd.raw_bytes" with
      | Some (M.Counter b) -> b = Dtd.comm_volume ~datum_bytes t
      | _ -> false)

(* Telemetry bus *)

module E = Geomix_obs.Events
module Trace = Geomix_runtime.Trace

let test_bus_level_filtering () =
  let bus = E.create ~level:E.Warn () in
  let ring = E.ring bus in
  Alcotest.(check bool) "debug disabled" false (E.enabled bus E.Debug);
  Alcotest.(check bool) "warn enabled" true (E.enabled bus E.Warn);
  E.emit ~level:E.Debug bus ~component:"t" ~name:"dropped" [];
  E.emit bus ~component:"t" ~name:"dropped too" [] (* default Info *);
  E.emit ~level:E.Warn bus ~component:"t" ~name:"kept" [];
  E.emit ~level:E.Error bus ~component:"t" ~name:"kept" [];
  let evs = E.ring_events ring in
  Alcotest.(check int) "only warn+ recorded" 2 (List.length evs);
  Alcotest.(check bool) "all named kept" true
    (List.for_all (fun e -> e.E.name = "kept") evs)

let test_bus_ring_capacity_and_order () =
  let bus = E.create () in
  let ring = E.ring ~capacity:4 bus in
  for i = 0 to 9 do
    E.emit bus ~component:"t" ~name:"e" [ ("i", E.fint i) ]
  done;
  let evs = E.ring_events ring in
  Alcotest.(check int) "capacity bounds history" 4 (List.length evs);
  Alcotest.(check (list int)) "most recent, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.E.seq) evs);
  (* Sequence numbers are dense and timestamps never step backwards. *)
  let rec mono = function
    | a :: (b : E.event) :: tl ->
      a.E.seq + 1 = b.E.seq && a.E.time <= b.E.time && mono (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "monotonic seq/time" true (mono evs);
  Alcotest.(check bool) "nonnegative time" true
    (List.for_all (fun e -> e.E.time >= 0.) evs)

let test_bus_jsonl_roundtrip () =
  let bus = E.create () in
  let ring = E.ring bus in
  E.emit ~level:E.Warn bus ~component:"chol\"esky" ~name:"task_end"
    [
      ("task", E.fint 17);
      ("label", E.fstr "GEMM(5,3,1)\n");
      ("at", E.fnum 0.125);
    ];
  let e = List.hd (E.ring_events ring) in
  (match E.of_jsonl (E.to_jsonl e) with
  | Error msg -> Alcotest.fail msg
  | Ok back ->
    Alcotest.(check bool) "event roundtrips" true (back = e);
    Alcotest.(check bool) "payload survives header filtering" true
      (back.E.fields = e.E.fields));
  (* Malformed lines are errors, not crashes. *)
  List.iter
    (fun line ->
      match E.of_jsonl line with
      | Ok _ -> Alcotest.failf "parsed %S" line
      | Error _ -> ())
    [ "{"; "[1,2]"; "{\"seq\": 0}"; "" ]

let test_bus_jsonl_file_sink () =
  let path = Filename.temp_file "geomix_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let bus = E.create () in
      E.attach_jsonl bus oc;
      for i = 0 to 2 do
        E.emit bus ~component:"t" ~name:"e" [ ("i", E.fint i) ]
      done;
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed =
        List.rev_map
          (fun l ->
            match E.of_jsonl l with Ok e -> e | Error m -> Alcotest.fail m)
          !lines
      in
      Alcotest.(check int) "one line per event" 3 (List.length parsed);
      Alcotest.(check (list int)) "in emission order" [ 0; 1; 2 ]
        (List.map (fun e -> e.E.seq) parsed))

let test_bus_read_jsonl_resilient () =
  let path = Filename.temp_file "geomix_events" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let bus = E.create () in
      E.attach_jsonl bus oc;
      for i = 0 to 3 do
        E.emit bus ~component:"t" ~name:"e" [ ("i", E.fint i) ]
      done;
      (* A log damaged in the middle and truncated mid-line by a crash:
         foreign output, garbage, and a partial final record. *)
      output_string oc "worker 3: restarting\n";
      output_string oc "{\"seq\": 99}\n";
      output_string oc "\n";
      output_string oc "{\"seq\":4,\"t\":0.5,\"level\":\"info\",\"compo";
      close_out oc;
      let ic = open_in path in
      let events, skipped =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> E.read_jsonl ic)
      in
      Alcotest.(check int) "every intact event survives" 4 (List.length events);
      Alcotest.(check (list int)) "in emission order" [ 0; 1; 2; 3 ]
        (List.map (fun e -> e.E.seq) events);
      (* Blank line is ignored silently; the three broken lines count. *)
      Alcotest.(check int) "malformed lines counted" 3 skipped)

let test_bus_non_finite_payload () =
  let bus = E.create () in
  let ring = E.ring bus in
  E.emit bus ~component:"bench" ~name:"stat"
    [ ("mean", E.fnum Float.nan); ("max", E.fnum Float.infinity) ];
  let e = List.hd (E.ring_events ring) in
  let line = E.to_jsonl e in
  Alcotest.(check bool) "non-finite floats serialise as null" true
    (contains ~affix:"\"mean\":null" line
    && contains ~affix:"\"max\":null" line
    && not (contains ~affix:"nan" (String.lowercase_ascii line)));
  match E.of_jsonl line with
  | Error msg -> Alcotest.fail msg
  | Ok back ->
    Alcotest.(check bool) "round-trips as Null, still one event" true
      (back.E.fields = [ ("mean", J.Null); ("max", J.Null) ])

let test_bus_env_level () =
  let restore = Sys.getenv_opt "GEOMIX_LOG" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GEOMIX_LOG" (Option.value restore ~default:""))
    (fun () ->
      Unix.putenv "GEOMIX_LOG" "warn";
      Alcotest.(check bool) "warn" true (E.env_level () = Some E.Warn);
      Unix.putenv "GEOMIX_LOG" "DEBUG";
      Alcotest.(check bool) "case-insensitive" true (E.env_level () = Some E.Debug);
      Unix.putenv "GEOMIX_LOG" "bogus";
      Alcotest.(check bool) "unparseable is off" true (E.env_level () = None);
      Unix.putenv "GEOMIX_LOG" "";
      Alcotest.(check bool) "empty is off" true (E.env_level () = None))

let count_named evs component name =
  List.length
    (List.filter (fun e -> e.E.component = component && e.E.name = name) evs)

let test_pool_bus_events () =
  let bus = E.create () in
  let ring = E.ring bus in
  (* The failing thunk is narrated on the bus and re-raised at wait_idle. *)
  (try
     Pool.with_pool ~bus ~num_workers:2 (fun pool ->
       Pool.submit pool (fun () -> ());
       Pool.submit pool (fun () -> failwith "boom");
       Pool.wait_idle pool)
   with Failure _ -> ());
  let evs = E.ring_events ring in
  Alcotest.(check int) "one create" 1 (count_named evs "pool" "create");
  Alcotest.(check int) "worker starts" 2 (count_named evs "pool" "worker_start");
  Alcotest.(check int) "worker stops" 2 (count_named evs "pool" "worker_stop");
  Alcotest.(check int) "one shutdown" 1 (count_named evs "pool" "shutdown");
  let errors =
    List.filter (fun e -> e.E.component = "pool" && e.E.name = "error") evs
  in
  Alcotest.(check int) "failing thunk narrated" 1 (List.length errors);
  Alcotest.(check bool) "at error level" true
    (List.for_all (fun e -> e.E.level = E.Error) errors);
  (* Lifecycle order: create first, shutdown last. *)
  match (evs, List.rev evs) with
  | first :: _, last :: _ ->
    Alcotest.(check string) "create first" "create" first.E.name;
    Alcotest.(check string) "shutdown last" "shutdown" last.E.name
  | _ -> Alcotest.fail "no events"

let test_dtd_bus_events () =
  let bus = E.create () in
  let ring = E.ring bus in
  let t = Dtd.create ~bus () in
  ignore (Dtd.insert t ~name:"w" ~reads:[] ~writes:[ 0; 1 ] (fun () -> ()));
  ignore (Dtd.insert t ~name:"r1" ~reads:[ 0; 1 ] ~writes:[ 2 ] (fun () -> ()));
  ignore (Dtd.insert t ~name:"r2" ~reads:[ 0; 2 ] ~writes:[] (fun () -> ()));
  Dtd.execute ~datum_bytes t;
  let evs = E.ring_events ring in
  Alcotest.(check int) "submits" 3 (count_named evs "dtd" "submit");
  Alcotest.(check int) "task begins" 3 (count_named evs "dtd" "task_begin");
  Alcotest.(check int) "task ends" 3 (count_named evs "dtd" "task_end");
  Alcotest.(check int) "completes" 3 (count_named evs "dtd" "complete");
  (* The narrated per-task fetch volumes sum to the declared total. *)
  let streamed_bytes =
    List.fold_left
      (fun acc e ->
        if e.E.name = "complete" then
          match List.assoc_opt "raw_bytes" e.E.fields with
          | Some (J.Num b) -> acc + int_of_float b
          | _ -> Alcotest.fail "complete without raw_bytes"
        else acc)
      0 evs
  in
  Alcotest.(check int) "streamed bytes = declared" (Dtd.comm_volume ~datum_bytes t)
    streamed_bytes

let test_bus_reconstructs_makespan () =
  (* The acceptance check behind `geomix report`: task_end events carry the
     same floats the Trace records, so the streamed log rebuilds the
     measured makespan bit-identically. *)
  let bus = E.create () in
  let ring = E.ring bus in
  let trace = Trace.create () in
  let t = Dtd.create () in
  let spin = ref 0. in
  for i = 0 to 7 do
    ignore
      (Dtd.insert t
         ~name:(Printf.sprintf "t%d" i)
         ~reads:(if i = 0 then [] else [ i - 1 ])
         ~writes:[ i ]
         (fun () ->
           for k = 1 to 1000 do
             spin := !spin +. float_of_int k
           done))
  done;
  Dtd.execute ~trace ~bus t;
  let streamed =
    List.fold_left
      (fun acc e ->
        if e.E.name = "task_end" then
          match List.assoc_opt "at" e.E.fields with
          | Some (J.Num stop) -> Float.max acc stop
          | _ -> Alcotest.fail "task_end without at"
        else acc)
      0. (E.ring_events ring)
  in
  Alcotest.(check bool) "events observed work" true (streamed > 0.);
  Alcotest.(check bool) "bit-identical makespan" true
    (streamed = Trace.makespan trace)

(* Jsonlite: control characters, unicode passthrough, non-finite numbers *)

let test_jsonlite_control_and_unicode () =
  (* Control characters are escaped on the way out and decoded back. *)
  let s = J.Str "a\x01b\x1fc\x00" in
  Alcotest.(check bool) "controls escaped" true
    (contains ~affix:"\\u0001" (J.to_string ~indent:false s));
  (match J.of_string (J.to_string s) with
  | Ok back -> Alcotest.(check bool) "controls roundtrip" true (back = s)
  | Error e -> Alcotest.fail e);
  (* UTF-8 byte sequences pass through untouched. *)
  let u = J.Str "h\xc3\xa9llo \xe2\x86\x92" in
  (match J.of_string (J.to_string u) with
  | Ok back -> Alcotest.(check bool) "utf-8 preserved" true (back = u)
  | Error e -> Alcotest.fail e);
  (* \u escapes decode (low bytes). *)
  match J.of_string "\"\\u0041\\u000a\"" with
  | Ok (J.Str v) -> Alcotest.(check string) "unicode escapes" "A\n" v
  | _ -> Alcotest.fail "escape decode"

let test_jsonlite_non_finite () =
  List.iter
    (fun v ->
      let out = J.to_string ~indent:false (J.Num v) in
      Alcotest.(check string) "non-finite serialises as null" "null" out;
      match J.of_string out with
      | Ok J.Null -> ()
      | _ -> Alcotest.fail "null parse")
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* Inside a payload, too: the JSONL stream stays parseable. *)
  let obj = J.Obj [ ("x", J.Num Float.nan) ] in
  match J.of_string (J.to_string obj) with
  | Ok (J.Obj [ ("x", J.Null) ]) -> ()
  | _ -> Alcotest.fail "nan field becomes null"

let test_metrics_csv_quoting () =
  let t = M.create () in
  M.add (M.counter t "weird \"name\", x") 1;
  M.set (M.gauge t "plain") 2.;
  let csv = M.to_csv (M.snapshot t) in
  Alcotest.(check bool) "quotes doubled, field quoted" true
    (contains ~affix:"\"weird \"\"name\"\", x\"" csv);
  Alcotest.(check bool) "plain name unquoted" true (contains ~affix:"\nplain," csv)

(* {1 Exposition, snapshotter and spans} *)

module Expo = Geomix_obs.Expo
module Span = Geomix_obs.Span

let populated_registry () =
  let t = M.create () in
  M.add (M.counter t "serve.requests") 7;
  M.set (M.gauge t "serve.inflight") 2.;
  let h = M.histogram t "serve.latency_s" in
  List.iter (M.observe h) [ 0.001; 0.012; 0.012; 0.3 ];
  M.observe h 0.;
  (* one underflow observation *)
  t

let test_expo_roundtrip () =
  let t = populated_registry () in
  let body = Expo.to_prometheus (M.snapshot t) in
  Alcotest.(check (list string)) "lints clean" [] (Expo.lint body);
  match Expo.parse body with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok samples ->
    let value name =
      match Expo.find samples name with
      | Some s -> s.Expo.value
      | None -> Alcotest.failf "sample %s missing" name
    in
    Alcotest.(check (float 0.)) "counter" 7. (value "geomix_serve_requests");
    Alcotest.(check (float 0.)) "gauge" 2. (value "geomix_serve_inflight");
    Alcotest.(check (float 0.)) "hist count (incl. underflow)" 5.
      (value "geomix_serve_latency_s_count");
    (* The +Inf cumulative bucket equals _count. *)
    let inf_bucket =
      List.find_opt
        (fun s ->
          s.Expo.name = "geomix_serve_latency_s_bucket"
          && List.mem_assoc "le" s.Expo.labels
          && List.assoc "le" s.Expo.labels = "+Inf")
        samples
    in
    (match inf_bucket with
    | Some s -> Alcotest.(check (float 0.)) "+Inf bucket = count" 5. s.Expo.value
    | None -> Alcotest.fail "+Inf bucket missing")

let test_expo_lint_rejects_damage () =
  let t = populated_registry () in
  let body = Expo.to_prometheus (M.snapshot t) in
  Alcotest.(check bool) "missing TYPE flagged" true
    (Expo.lint ("orphan_metric 1\n" ^ body) <> []);
  Alcotest.(check bool) "malformed line flagged" true
    (Expo.lint (body ^ "not a sample line at all\n") <> [])

let test_snapshotter_rotation () =
  let dir = Filename.temp_file "geomix-telemetry" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "telemetry.jsonl" in
  let t = populated_registry () in
  let sink = Expo.snapshotter ~max_bytes:256 ~keep:2 ~path () in
  Alcotest.(check string) "path accessor" path (Expo.snapshotter_path sink);
  for _ = 1 to 12 do
    Expo.snap sink (M.snapshot t)
  done;
  Expo.close sink;
  Alcotest.(check bool) "live file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "rotated at least once" true
    (Sys.file_exists (path ^ ".1"));
  Alcotest.(check bool) "keep bound respected" false
    (Sys.file_exists (path ^ ".3"));
  (* Every line of the newest rotated file is a decodable snapshot
     envelope (the live file may be freshly rotated, hence empty). *)
  let ic = open_in (path ^ ".1") in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match J.of_string line with
       | Ok (J.Obj kvs) ->
         Alcotest.(check bool) "has t" true (List.mem_assoc "t" kvs);
         (match List.assoc_opt "metrics" kvs with
         | Some m -> (
           match M.of_json m with
           | Ok snap ->
             Alcotest.(check bool) "snapshot decodes" true
               (M.find snap "serve.requests" <> None)
           | Error e -> Alcotest.failf "metrics decode: %s" e)
         | None -> Alcotest.fail "missing metrics key")
       | Ok _ -> Alcotest.fail "line is not an object"
       | Error e -> Alcotest.failf "line is not json: %s" e
     done
   with End_of_file -> ());
  close_in ic;
  Alcotest.(check bool) "rotated file non-empty" true (!lines > 0);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let test_metrics_json_roundtrip () =
  let t = populated_registry () in
  let s = M.snapshot t in
  match M.of_json (M.to_json s) with
  | Error m -> Alcotest.failf "of_json: %s" m
  | Ok s' ->
    Alcotest.(check int) "same cardinality" (List.length s) (List.length s');
    (match (M.find s' "serve.requests", M.find s' "serve.inflight") with
    | Some (M.Counter 7), Some (M.Gauge 2.) -> ()
    | _ -> Alcotest.fail "scalar values survive");
    (match (M.find s "serve.latency_s", M.find s' "serve.latency_s") with
    | Some (M.Histogram h), Some (M.Histogram h') ->
      Alcotest.(check int) "hist count" h.M.count h'.M.count;
      Alcotest.(check int) "hist underflow" h.M.underflow h'.M.underflow;
      Alcotest.(check (float 1e-12)) "hist sum" h.M.sum h'.M.sum;
      Alcotest.(check (float 1e-12)) "p99 survives json" (M.quantile h 0.99)
        (M.quantile h' 0.99)
    | _ -> Alcotest.fail "histogram survives")

let test_span_accumulation_and_json () =
  let sp = Span.create ~request_id:"req-1" () in
  Span.note_transfer sp ~prec:"FP32" ~bytes:400 ~fp64_bytes:800;
  Span.note_transfer sp ~prec:"FP64" ~bytes:800 ~fp64_bytes:800;
  Span.note_transfer sp ~bytes:100 ~fp64_bytes:100;
  Span.note_task sp;
  Span.note_task sp;
  Span.note_retry sp;
  Span.note_exec sp ~queue_s:0.25 ~run_s:1.5;
  let s = Span.summary sp in
  Alcotest.(check int) "stc bytes" 1300 s.Span.s_bytes_stc;
  Alcotest.(check int) "fp64 bytes" 1700 s.Span.s_bytes_fp64;
  Alcotest.(check int) "edges" 3 s.Span.s_edges;
  Alcotest.(check int) "tasks" 2 s.Span.s_tasks;
  Alcotest.(check int) "retries" 1 s.Span.s_retries;
  Alcotest.(check (float 1e-12)) "queue" 0.25 s.Span.s_queue_s;
  Alcotest.(check (float 1e-12)) "busy" 1.5 s.Span.s_busy_s;
  Alcotest.(check bool) "precision split covers labelled bytes" true
    (List.assoc_opt "FP32" s.Span.s_by_precision = Some 400
    && List.assoc_opt "FP64" s.Span.s_by_precision = Some 800);
  (* Children share the trace, parent linkage survives the codec. *)
  let child = Span.child sp ~request_id:"req-1/mc" in
  Alcotest.(check string) "child shares trace id" (Span.trace_id sp)
    (Span.trace_id child);
  let cs = Span.summary child in
  Alcotest.(check bool) "child parented" true
    (cs.Span.s_parent = Some (Span.span_id sp));
  match Span.summary_of_json (Span.summary_to_json s) with
  | Ok s' -> Alcotest.(check bool) "summary json round-trip" true (s = s')
  | Error m -> Alcotest.failf "summary_of_json: %s" m

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "gauge set/set_max" `Quick test_gauge_set_max;
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "bucket bounds contain values" `Quick test_histogram_bucket_bounds;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edge_cases;
          Alcotest.test_case "span timer" `Quick test_span_timer;
          Alcotest.test_case "snapshot/diff algebra" `Quick test_snapshot_diff;
          Alcotest.test_case "exporters" `Quick test_exporters_cover_all_metrics;
          Alcotest.test_case "csv quoting" `Quick test_metrics_csv_quoting;
        ] );
      ( "jsonlite",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonlite_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_jsonlite_errors;
          Alcotest.test_case "control chars and unicode" `Quick
            test_jsonlite_control_and_unicode;
          Alcotest.test_case "non-finite numbers" `Quick test_jsonlite_non_finite;
        ] );
      ( "telemetry bus",
        [
          Alcotest.test_case "level filtering" `Quick test_bus_level_filtering;
          Alcotest.test_case "ring capacity and order" `Quick
            test_bus_ring_capacity_and_order;
          Alcotest.test_case "jsonl roundtrip" `Quick test_bus_jsonl_roundtrip;
          Alcotest.test_case "jsonl file sink" `Quick test_bus_jsonl_file_sink;
          Alcotest.test_case "read_jsonl skips damage" `Quick
            test_bus_read_jsonl_resilient;
          Alcotest.test_case "non-finite payload" `Quick
            test_bus_non_finite_payload;
          Alcotest.test_case "GEOMIX_LOG parsing" `Quick test_bus_env_level;
          Alcotest.test_case "pool lifecycle events" `Quick test_pool_bus_events;
          Alcotest.test_case "dtd submit/complete events" `Quick test_dtd_bus_events;
          Alcotest.test_case "log replay reconstructs makespan" `Quick
            test_bus_reconstructs_makespan;
        ] );
      ( "bench gate",
        [
          Alcotest.test_case "json roundtrip" `Quick test_bench_json_roundtrip;
          Alcotest.test_case "gate directions" `Quick test_regression_gate_directions;
          Alcotest.test_case "gate expect" `Quick test_regression_gate_expect;
          Alcotest.test_case "file io" `Quick test_bench_json_file_io;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus round-trip" `Quick test_expo_roundtrip;
          Alcotest.test_case "lint rejects damage" `Quick
            test_expo_lint_rejects_damage;
          Alcotest.test_case "snapshotter rotation" `Quick
            test_snapshotter_rotation;
          Alcotest.test_case "metrics json round-trip" `Quick
            test_metrics_json_roundtrip;
          Alcotest.test_case "span accumulation and codec" `Quick
            test_span_accumulation_and_json;
        ] );
      ( "instrumented executors",
        [
          Alcotest.test_case "pool metrics" `Quick test_pool_obs;
          Alcotest.test_case "serial pool metrics" `Quick test_pool_obs_serial;
          Alcotest.test_case "dtd bytes recorded" `Quick test_dtd_obs_matches_comm_volume;
          QCheck_alcotest.to_alcotest prop_bytes_schedule_independent;
          QCheck_alcotest.to_alcotest prop_dtd_obs_schedule_independent;
        ] );
    ]
