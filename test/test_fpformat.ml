module Fp = Geomix_precision.Fpformat

let scalar = Alcotest.testable Fp.pp_scalar ( = )

let test_fp64_identity () =
  List.iter
    (fun x -> Alcotest.(check (float 0.)) "identity" x (Fp.round Fp.S_fp64 x))
    [ 0.; 1.; -1.; Float.pi; 1e-300; 1e300; 0.1 ]

let test_special_values () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "nan" true (Float.is_nan (Fp.round s nan));
      Alcotest.(check (float 0.)) "inf" infinity (Fp.round s infinity);
      Alcotest.(check (float 0.)) "-inf" neg_infinity (Fp.round s neg_infinity);
      Alcotest.(check (float 0.)) "zero" 0. (Fp.round s 0.))
    Fp.all_scalars

let test_exact_values_fixed () =
  (* Powers of two and small integers inside the format's range are exact
     in every format (1024 exceeds E4M3's 448 ceiling, so keep the probe
     set within every range). *)
  List.iter
    (fun s ->
      List.iter
        (fun x ->
          if Float.abs x <= Fp.scalar_max_value s then
            Alcotest.(check (float 0.)) "exact" x (Fp.round s x))
        [ 1.; 2.; 0.5; -4.; 1024.; 0.0625; 3.; -7. ])
    Fp.all_scalars

let test_fp16_known_roundings () =
  (* FP16 has a 10-bit stored mantissa: ulp at 1.0 is 2^-10. *)
  let ulp = Float.ldexp 1. (-10) in
  Alcotest.(check (float 0.)) "round down" 1. (Fp.round Fp.S_fp16 (1. +. (ulp /. 4.)));
  Alcotest.(check (float 0.)) "round up" (1. +. ulp)
    (Fp.round Fp.S_fp16 (1. +. (0.75 *. ulp)));
  (* Tie at half ulp goes to even (mantissa 0). *)
  Alcotest.(check (float 0.)) "tie to even" 1. (Fp.round Fp.S_fp16 (1. +. (ulp /. 2.)))

let test_fp16_overflow () =
  Alcotest.(check (float 0.)) "max fp16" 65504. (Fp.round Fp.S_fp16 65504.);
  Alcotest.(check (float 0.)) "overflow" infinity (Fp.round Fp.S_fp16 65520.);
  Alcotest.(check (float 0.)) "neg overflow" neg_infinity (Fp.round Fp.S_fp16 (-70000.))

let test_fp16_subnormals () =
  let tiny = Float.ldexp 1. (-24) in
  (* smallest fp16 subnormal *)
  Alcotest.(check (float 0.)) "subnormal exact" tiny (Fp.round Fp.S_fp16 tiny);
  Alcotest.(check (float 0.)) "below half-tiny flushes" 0.
    (Fp.round Fp.S_fp16 (tiny /. 4.));
  Alcotest.(check (float 0.)) "above half-tiny rounds up" tiny
    (Fp.round Fp.S_fp16 (0.6 *. tiny))

let test_bf16_range () =
  (* BF16 shares FP32's exponent range: 1e38 survives, precision is coarse. *)
  let r = Fp.round Fp.S_bf16 1e38 in
  Alcotest.(check bool) "finite" true (Float.is_finite r);
  Alcotest.(check bool) "coarse" true (Float.abs (r -. 1e38) /. 1e38 < 4e-3)

let test_fp32_matches_int32_roundtrip () =
  (* Values exactly representable in fp32 must round to themselves. *)
  List.iter
    (fun x -> Alcotest.(check (float 0.)) "fp32 exact" x (Fp.round Fp.S_fp32 x))
    [ 1.5; 3.25; 123456.; Float.ldexp 1. (-126); -0.1015625 ]

let test_unit_roundoff_ordering () =
  let u = Fp.scalar_unit_roundoff in
  Alcotest.(check bool) "fp64 < fp32" true (u Fp.S_fp64 < u Fp.S_fp32);
  Alcotest.(check bool) "fp32 < tf32" true (u Fp.S_fp32 < u Fp.S_tf32);
  Alcotest.(check bool) "tf32 = fp16" true (u Fp.S_tf32 = u Fp.S_fp16);
  Alcotest.(check bool) "fp16 < bf16" true (u Fp.S_fp16 < u Fp.S_bf16);
  Alcotest.(check bool) "bf16 < e4m3" true (u Fp.S_bf16 < u Fp.S_fp8_e4m3);
  Alcotest.(check bool) "e4m3 < e5m2" true (u Fp.S_fp8_e4m3 < u Fp.S_fp8_e5m2);
  Alcotest.(check (float 0.)) "e4m3 u" (Float.ldexp 1. (-4)) (u Fp.S_fp8_e4m3);
  Alcotest.(check (float 0.)) "e5m2 u" (Float.ldexp 1. (-3)) (u Fp.S_fp8_e5m2)

let test_bytes () =
  Alcotest.(check int) "fp64" 8 (Fp.scalar_bytes Fp.S_fp64);
  Alcotest.(check int) "fp32" 4 (Fp.scalar_bytes Fp.S_fp32);
  Alcotest.(check int) "tf32 stored as 4B" 4 (Fp.scalar_bytes Fp.S_tf32);
  Alcotest.(check int) "fp16" 2 (Fp.scalar_bytes Fp.S_fp16);
  Alcotest.(check int) "bf16" 2 (Fp.scalar_bytes Fp.S_bf16);
  Alcotest.(check int) "e4m3" 1 (Fp.scalar_bytes Fp.S_fp8_e4m3);
  Alcotest.(check int) "e5m2" 1 (Fp.scalar_bytes Fp.S_fp8_e5m2)

let test_higher_scalar () =
  Alcotest.(check scalar) "64 vs 16" Fp.S_fp64 (Fp.higher_scalar Fp.S_fp64 Fp.S_fp16);
  Alcotest.(check scalar) "16 vs 32" Fp.S_fp32 (Fp.higher_scalar Fp.S_fp16 Fp.S_fp32);
  Alcotest.(check scalar) "bf16 lowest" Fp.S_fp16 (Fp.higher_scalar Fp.S_bf16 Fp.S_fp16)

let test_precision_mappings () =
  Alcotest.(check scalar) "fp16_32 input" Fp.S_fp16 (Fp.input_scalar Fp.Fp16_32);
  Alcotest.(check scalar) "fp16_32 accum" Fp.S_fp32 (Fp.accum_scalar Fp.Fp16_32);
  Alcotest.(check scalar) "fp16 accum" Fp.S_fp16 (Fp.accum_scalar Fp.Fp16);
  Alcotest.(check scalar) "tf32 input" Fp.S_tf32 (Fp.input_scalar Fp.Tf32);
  Alcotest.(check scalar) "fp64 storage" Fp.S_fp64 (Fp.storage_scalar Fp.Fp64);
  (* TRSM cannot run below FP32 ⇒ FP16-class tiles are stored in FP32. *)
  Alcotest.(check scalar) "fp16 storage" Fp.S_fp32 (Fp.storage_scalar Fp.Fp16);
  Alcotest.(check scalar) "fp16_32 storage" Fp.S_fp32 (Fp.storage_scalar Fp.Fp16_32)

let test_rule_epsilon_ordering () =
  (* Lower precision ⇒ larger u_low ⇒ stricter norm threshold. *)
  Alcotest.(check bool) "chain" true
    (Fp.rule_epsilon Fp.Fp64 < Fp.rule_epsilon Fp.Fp32
    && Fp.rule_epsilon Fp.Fp32 < Fp.rule_epsilon Fp.Fp16_32
    && Fp.rule_epsilon Fp.Fp16_32 < Fp.rule_epsilon Fp.Fp16)

let test_names_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "of_string∘name" true (Fp.of_string (Fp.name p) = Some p))
    Fp.all;
  List.iter
    (fun s ->
      Alcotest.(check bool) "scalar roundtrip" true
        (Fp.scalar_of_string (Fp.scalar_name s) = Some s))
    Fp.all_scalars;
  Alcotest.(check bool) "unknown" true (Fp.of_string "FP8" = None)

(* --- FP8 (OCP e4m3 / e5m2) --------------------------------------------- *)

let fp8s = [ Fp.S_fp8_e4m3; Fp.S_fp8_e5m2 ]

let test_fp8_known_values () =
  (* E4M3: max finite 448 (all-ones pattern is NaN, not a number). *)
  Alcotest.(check (float 0.)) "e4m3 max" 448. (Fp.scalar_max_value Fp.S_fp8_e4m3);
  Alcotest.(check (float 0.)) "e4m3 max exact" 448. (Fp.round Fp.S_fp8_e4m3 448.);
  Alcotest.(check (float 0.)) "e5m2 max" 57344. (Fp.scalar_max_value Fp.S_fp8_e5m2);
  Alcotest.(check (float 0.)) "e5m2 max exact" 57344. (Fp.round Fp.S_fp8_e5m2 57344.);
  (* Smallest subnormals: 2^-9 and 2^-16. *)
  Alcotest.(check (float 0.)) "e4m3 tiny" (Float.ldexp 1. (-9))
    (Fp.scalar_min_subnormal Fp.S_fp8_e4m3);
  Alcotest.(check (float 0.)) "e5m2 tiny" (Float.ldexp 1. (-16))
    (Fp.scalar_min_subnormal Fp.S_fp8_e5m2);
  (* Grid rounding at 1.0: ulp is 2^-3 / 2^-2. *)
  Alcotest.(check (float 0.)) "e4m3 1+eps/4 down" 1.
    (Fp.round Fp.S_fp8_e4m3 (1. +. (0.25 /. 8.)));
  Alcotest.(check (float 0.)) "e4m3 tie to even" 1.
    (Fp.round Fp.S_fp8_e4m3 (1. +. (0.5 /. 8.)));
  Alcotest.(check (float 0.)) "e4m3 up" 1.125 (Fp.round Fp.S_fp8_e4m3 1.1);
  (* Subnormal flush boundary. *)
  Alcotest.(check (float 0.)) "e4m3 tiny/2 flushes" 0.
    (Fp.round Fp.S_fp8_e4m3 (Float.ldexp 1. (-10)));
  Alcotest.(check (float 0.)) "e4m3 0.75·tiny rounds up" (Float.ldexp 1. (-9))
    (Fp.round Fp.S_fp8_e4m3 (0.75 *. Float.ldexp 1. (-9)))

let test_fp8_saturation () =
  (* Finite overflow saturates to ±max instead of producing an infinity
     (which E4M3 does not even have). *)
  Alcotest.(check (float 0.)) "464 rounds to even 448" 448.
    (Fp.round Fp.S_fp8_e4m3 464.);
  Alcotest.(check (float 0.)) "465 saturates" 448. (Fp.round Fp.S_fp8_e4m3 465.);
  Alcotest.(check (float 0.)) "1e6 saturates" 448. (Fp.round Fp.S_fp8_e4m3 1e6);
  Alcotest.(check (float 0.)) "neg saturates" (-448.) (Fp.round Fp.S_fp8_e4m3 (-1e6));
  Alcotest.(check (float 0.)) "e5m2 saturates" 57344. (Fp.round Fp.S_fp8_e5m2 1e9);
  Alcotest.(check (float 0.)) "e5m2 neg" (-57344.) (Fp.round Fp.S_fp8_e5m2 (-61441.));
  (* Infinities still pass through round (they are inputs, not overflow). *)
  Alcotest.(check (float 0.)) "inf passes" infinity (Fp.round Fp.S_fp8_e4m3 infinity)

let test_fp8_codec_known_patterns () =
  (* E4M3: 0x7E = 448, 0x01 = 2^-9, 0x7F = NaN, 0x80 = -0. *)
  Alcotest.(check (float 0.)) "e4m3 0x7E" 448. (Fp.fp8_decode Fp.S_fp8_e4m3 0x7E);
  Alcotest.(check (float 0.)) "e4m3 0x01" (Float.ldexp 1. (-9))
    (Fp.fp8_decode Fp.S_fp8_e4m3 0x01);
  Alcotest.(check bool) "e4m3 0x7F nan" true
    (Float.is_nan (Fp.fp8_decode Fp.S_fp8_e4m3 0x7F));
  Alcotest.(check bool) "e4m3 0x80 is -0" true
    (Float.sign_bit (Fp.fp8_decode Fp.S_fp8_e4m3 0x80));
  (* E5M2: 0x7B = 57344 (max finite), 0x7C = +inf, 0x7D–0x7F = NaN. *)
  Alcotest.(check (float 0.)) "e5m2 0x7B" 57344. (Fp.fp8_decode Fp.S_fp8_e5m2 0x7B);
  Alcotest.(check (float 0.)) "e5m2 0x7C inf" infinity
    (Fp.fp8_decode Fp.S_fp8_e5m2 0x7C);
  Alcotest.(check (float 0.)) "e5m2 0xFC -inf" neg_infinity
    (Fp.fp8_decode Fp.S_fp8_e5m2 0xFC);
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "e5m2 0x%02X nan" b)
        true
        (Float.is_nan (Fp.fp8_decode Fp.S_fp8_e5m2 b)))
    [ 0x7D; 0x7E; 0x7F; 0xFD; 0xFE; 0xFF ]

(* The tentpole's exhaustive check: every one of the 256 bit patterns of
   each FP8 format round-trips through decode → encode.  Non-NaN patterns
   are exact fixed points of both the codec and [round]; NaN patterns stay
   NaN with their sign preserved (encode canonicalizes E5M2's three NaN
   mantissas). *)
let test_fp8_exhaustive_roundtrip () =
  List.iter
    (fun s ->
      for b = 0 to 255 do
        let name = Printf.sprintf "%s 0x%02X" (Fp.scalar_name s) b in
        let v = Fp.fp8_decode s b in
        if Float.is_nan v then begin
          let e = Fp.fp8_encode s v in
          Alcotest.(check bool) (name ^ " nan stays nan") true
            (Float.is_nan (Fp.fp8_decode s e));
          Alcotest.(check int) (name ^ " nan sign") (b land 0x80) (e land 0x80)
        end
        else begin
          Alcotest.(check int) (name ^ " roundtrip") b (Fp.fp8_encode s v);
          (* Every representable value is a fixed point of rounding. *)
          if Float.is_finite v then
            Alcotest.(check (float 0.)) (name ^ " fixed point") v (Fp.round s v)
        end
      done)
    fp8s

let test_fp8_encode_of_unrepresentable () =
  (* encode = encode ∘ round: saturation and ties handled identically. *)
  Alcotest.(check int) "465 → 0x7E" 0x7E (Fp.fp8_encode Fp.S_fp8_e4m3 465.);
  Alcotest.(check int) "-1e9 → 0xFE" 0xFE (Fp.fp8_encode Fp.S_fp8_e4m3 (-1e9));
  Alcotest.(check int) "e5m2 +inf → 0x7C" 0x7C (Fp.fp8_encode Fp.S_fp8_e5m2 infinity);
  Alcotest.(check int) "e4m3 +inf → 0x7E" 0x7E (Fp.fp8_encode Fp.S_fp8_e4m3 infinity);
  Alcotest.(check int) "e4m3 nan → 0x7F" 0x7F (Fp.fp8_encode Fp.S_fp8_e4m3 nan);
  Alcotest.(check int) "-0 → 0x80" 0x80 (Fp.fp8_encode Fp.S_fp8_e4m3 (-0.))

let test_fp8_partial_order () =
  (* Every wider format in the chain refines both FP8s... *)
  List.iter
    (fun t ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s refines %s" (Fp.scalar_name t) (Fp.scalar_name s))
            true (Fp.refines t s))
        fp8s)
    [ Fp.S_fp64; Fp.S_fp32; Fp.S_tf32; Fp.S_fp16; Fp.S_bf16 ];
  (* ...but the two FP8s are incomparable (precision vs range), like
     FP16/BF16 one level up. *)
  Alcotest.(check bool) "e4m3 !> e5m2" false (Fp.refines Fp.S_fp8_e4m3 Fp.S_fp8_e5m2);
  Alcotest.(check bool) "e5m2 !> e4m3" false (Fp.refines Fp.S_fp8_e5m2 Fp.S_fp8_e4m3);
  Alcotest.(check bool) "nothing below refines fp16" false
    (Fp.refines Fp.S_fp8_e4m3 Fp.S_fp16)

let fp8_value_gen =
  (* Concentrated where FP8 values live, including subnormal and
     saturation territory. *)
  QCheck.oneof
    [
      QCheck.float_range (-480.) 480.;
      QCheck.float_range (-1.) 1.;
      QCheck.float_range (-70000.) 70000.;
      QCheck.float_range (-0.01) 0.01;
    ]

let prop_fp8_round_idempotent =
  QCheck.Test.make ~name:"FP8 rounding is idempotent" ~count:2000
    (QCheck.pair (QCheck.oneofl fp8s) fp8_value_gen)
    (fun (s, x) ->
      let y = Fp.round s x in
      Fp.round s y = y)

let prop_fp8_round_monotone =
  QCheck.Test.make ~name:"FP8 rounding is monotone" ~count:2000
    (QCheck.triple (QCheck.oneofl fp8s) fp8_value_gen fp8_value_gen)
    (fun (s, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Fp.round s lo <= Fp.round s hi)

let prop_fp8_respects_partial_order =
  (* refines t s ⇒ re-rounding an s-value to t is the identity: an FP8
     result survives a trip through FP16/BF16 (or wider) untouched. *)
  QCheck.Test.make ~name:"FP8 values are fixed points of refining formats" ~count:2000
    (QCheck.triple (QCheck.oneofl fp8s)
       (QCheck.oneofl [ Fp.S_fp16; Fp.S_bf16; Fp.S_tf32; Fp.S_fp32 ])
       fp8_value_gen)
    (fun (s, t, x) ->
      let y = Fp.round s x in
      (not (Float.is_finite y)) || Fp.round t y = y)

let prop_fp8_codec_matches_round =
  QCheck.Test.make ~name:"fp8 decode∘encode = round" ~count:2000
    (QCheck.pair (QCheck.oneofl fp8s) fp8_value_gen)
    (fun (s, x) ->
      Fp.fp8_decode s (Fp.fp8_encode s x) = Fp.round s x
      || Float.is_nan x)

(* OCaml's Int32.bits_of_float performs IEEE double→single conversion with
   round-to-nearest-even in hardware: a perfect oracle for S_fp32. *)
let hw_fp32 x = Int32.float_of_bits (Int32.bits_of_float x)

let test_fp32_against_hardware_fixed () =
  List.iter
    (fun x ->
      let ours = Fp.round Fp.S_fp32 x and hw = hw_fp32 x in
      Alcotest.(check bool)
        (Printf.sprintf "%.17g: ours %.17g vs hw %.17g" x ours hw)
        true
        (ours = hw || (Float.is_nan ours && Float.is_nan hw)))
    [
      0.1; -0.1; Float.pi; exp 1.; 1e-40; -1e-40; 1e38; 3.4028235e38; 3.5e38;
      1.1754944e-38; 1e-45; 7e-46; 0.333333333333333; 65504.1; 2.0 ** 127.;
      1.9999999 *. (2.0 ** 127.); -123456.789;
    ]

let prop_fp32_matches_hardware =
  QCheck.Test.make ~name:"S_fp32 rounding = hardware float32 conversion" ~count:20000
    (QCheck.oneof
       [
         QCheck.float_range (-1e38) 1e38;
         QCheck.float_range (-1.) 1.;
         QCheck.float_range (-1e-37) 1e-37; (* subnormal territory *)
         QCheck.float_range 1e37 4e38;      (* overflow boundary *)
       ])
    (fun x ->
      let ours = Fp.round Fp.S_fp32 x and hw = hw_fp32 x in
      ours = hw || (Float.is_nan ours && Float.is_nan hw))

let float_gen = QCheck.float_range (-1e30) 1e30

let prop_idempotent =
  QCheck.Test.make ~name:"rounding is idempotent" ~count:2000
    (QCheck.pair (QCheck.oneofl Fp.all_scalars) float_gen)
    (fun (s, x) ->
      let y = Fp.round s x in
      (Float.is_nan y && Float.is_nan x) || Fp.round s y = y)

let prop_monotone =
  QCheck.Test.make ~name:"rounding is monotone" ~count:2000
    (QCheck.triple (QCheck.oneofl Fp.all_scalars) float_gen float_gen)
    (fun (s, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Fp.round s lo <= Fp.round s hi)

let prop_half_ulp =
  QCheck.Test.make ~name:"error within half ulp (normal range)" ~count:2000
    (QCheck.pair (QCheck.oneofl Fp.all_scalars) (QCheck.float_range (-1e4) 1e4))
    (fun (s, x) ->
      if x = 0. then true
      else begin
        let u = Fp.scalar_unit_roundoff s in
        (* The relative bound only holds inside the format's normal range:
           outside it FP8 saturates (and any format underflows gradually). *)
        let min_normal = Fp.scalar_min_subnormal s /. (2. *. u) in
        if Float.abs x > Fp.scalar_max_value s || Float.abs x < min_normal then true
        else begin
          let y = Fp.round s x in
          if not (Float.is_finite y) then true
          else Float.abs (y -. x) <= (u *. Float.abs x) +. 1e-300
        end
      end)

let prop_sign_preserved =
  QCheck.Test.make ~name:"sign preserved" ~count:1000
    (QCheck.pair (QCheck.oneofl Fp.all_scalars) float_gen)
    (fun (s, x) ->
      let y = Fp.round s x in
      y = 0. || Float.sign_bit y = Float.sign_bit x)

let () =
  Alcotest.run "fpformat"
    [
      ( "rounding",
        [
          Alcotest.test_case "fp64 identity" `Quick test_fp64_identity;
          Alcotest.test_case "special values" `Quick test_special_values;
          Alcotest.test_case "exact values" `Quick test_exact_values_fixed;
          Alcotest.test_case "fp16 known roundings" `Quick test_fp16_known_roundings;
          Alcotest.test_case "fp16 overflow" `Quick test_fp16_overflow;
          Alcotest.test_case "fp16 subnormals" `Quick test_fp16_subnormals;
          Alcotest.test_case "bf16 range" `Quick test_bf16_range;
          Alcotest.test_case "fp32 exact values" `Quick test_fp32_matches_int32_roundtrip;
          Alcotest.test_case "fp32 = hardware (fixed cases)" `Quick
            test_fp32_against_hardware_fixed;
          QCheck_alcotest.to_alcotest prop_fp32_matches_hardware;
        ] );
      ( "format metadata",
        [
          Alcotest.test_case "unit roundoff ordering" `Quick test_unit_roundoff_ordering;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "higher_scalar" `Quick test_higher_scalar;
          Alcotest.test_case "precision mappings" `Quick test_precision_mappings;
          Alcotest.test_case "rule epsilon ordering" `Quick test_rule_epsilon_ordering;
          Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
        ] );
      ( "fp8",
        [
          Alcotest.test_case "known values" `Quick test_fp8_known_values;
          Alcotest.test_case "saturation" `Quick test_fp8_saturation;
          Alcotest.test_case "codec known patterns" `Quick test_fp8_codec_known_patterns;
          Alcotest.test_case "exhaustive 256-pattern roundtrip" `Quick
            test_fp8_exhaustive_roundtrip;
          Alcotest.test_case "encode of unrepresentable" `Quick
            test_fp8_encode_of_unrepresentable;
          Alcotest.test_case "partial order" `Quick test_fp8_partial_order;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_idempotent; prop_monotone; prop_half_ulp; prop_sign_preserved;
            prop_fp8_round_idempotent; prop_fp8_round_monotone;
            prop_fp8_respects_partial_order; prop_fp8_codec_matches_round;
          ] );
    ]
