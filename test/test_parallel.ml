module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Par = Geomix_parallel.Par
module Rng = Geomix_util.Rng
module Explore = Geomix_verify.Explore

exception Boom

let with_pools f =
  (* Exercise both the serial degradation and a real multi-domain pool. *)
  List.iter (fun w -> Pool.with_pool ~num_workers:w f) [ 0; 2 ]

let test_submit_runs () =
  with_pools (fun pool ->
    let hits = Atomic.make 0 in
    for _ = 1 to 50 do
      Pool.submit pool (fun () -> Atomic.incr hits)
    done;
    Pool.wait_idle pool;
    Alcotest.(check int) "all ran" 50 (Atomic.get hits))

let test_nested_submit () =
  with_pools (fun pool ->
    let hits = Atomic.make 0 in
    Pool.submit pool (fun () ->
      Atomic.incr hits;
      Pool.submit pool (fun () -> Atomic.incr hits));
    Pool.wait_idle pool;
    Alcotest.(check int) "nested ran" 2 (Atomic.get hits))

let test_exception_propagates () =
  List.iter
    (fun w ->
      let pool = Pool.create ~num_workers:w () in
      Pool.submit pool (fun () -> raise Boom);
      Alcotest.check_raises "re-raised" Boom (fun () -> Pool.wait_idle pool);
      Pool.shutdown pool)
    [ 0; 2 ]

(* Stress the failure path: repeated rounds of raising tasks mixed with
   healthy ones.  Each round must re-raise, leak no worker domain, and
   leave the pool fully usable for the next round. *)
let test_raise_stress () =
  List.iter
    (fun w ->
      let pool = Pool.create ~num_workers:w () in
      let workers = Pool.num_workers pool in
      for round = 1 to 5 do
        let hits = Atomic.make 0 in
        for i = 1 to 20 do
          Pool.submit pool (fun () ->
            if i mod 4 = 0 then raise Boom else Atomic.incr hits)
        done;
        Alcotest.check_raises
          (Printf.sprintf "round %d re-raised" round)
          Boom
          (fun () -> Pool.wait_idle pool);
        Alcotest.(check int)
          (Printf.sprintf "round %d workers intact" round)
          workers (Pool.num_workers pool);
        (* The pool must still run a clean batch after the failure. *)
        let after = Atomic.make 0 in
        for _ = 1 to 10 do
          Pool.submit pool (fun () -> Atomic.incr after)
        done;
        Pool.wait_idle pool;
        Alcotest.(check int)
          (Printf.sprintf "round %d pool usable after raise" round)
          10 (Atomic.get after)
      done;
      Pool.shutdown pool;
      (* Shutdown after a raising history must be clean and idempotent. *)
      Pool.shutdown pool)
    [ 0; 2 ]

let test_wait_idle_idempotent () =
  with_pools (fun pool ->
    Pool.wait_idle pool;
    Pool.wait_idle pool)

let test_parallel_for () =
  with_pools (fun pool ->
    let out = Array.make 100 0 in
    Par.parallel_for ~pool ~lo:0 ~hi:100 (fun i -> out.(i) <- i * i);
    Array.iteri (fun i v -> Alcotest.(check int) "value" (i * i) v) out)

let test_parallel_for_empty () =
  with_pools (fun pool -> Par.parallel_for ~pool ~lo:5 ~hi:5 (fun _ -> assert false))

let test_parallel_init_map () =
  with_pools (fun pool ->
    let a = Par.parallel_init ~pool 20 (fun i -> i + 1) in
    Alcotest.(check int) "init" 20 a.(19);
    let b = Par.parallel_map ~pool (fun x -> 2 * x) a in
    Alcotest.(check int) "map" 40 b.(19))

(* A random layered DAG: edges only go from layer k to k+1, so it is
   acyclic by construction; execution must respect every edge. *)
let random_layered_dag rng ~layers ~width =
  let num = layers * width in
  let succs = Array.make num [] in
  let indeg = Array.make num 0 in
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      let src = (l * width) + i in
      for j = 0 to width - 1 do
        if Rng.float rng < 0.4 then begin
          let dst = ((l + 1) * width) + j in
          succs.(src) <- dst :: succs.(src);
          indeg.(dst) <- indeg.(dst) + 1
        end
      done
    done
  done;
  (num, succs, indeg)

let test_dag_exec_respects_dependencies () =
  List.iter
    (fun w ->
      Pool.with_pool ~num_workers:w (fun pool ->
        let rng = Rng.create ~seed:42 in
        let num, succs, indeg = random_layered_dag rng ~layers:6 ~width:8 in
        let finished = Array.make num false in
        let mutex = Mutex.create () in
        let violations = ref 0 in
        let preds = Array.make num [] in
        Array.iteri (fun src l -> List.iter (fun d -> preds.(d) <- src :: preds.(d)) l) succs;
        Dag_exec.run ~pool ~num_tasks:num ~in_degree:(Array.copy indeg)
          ~successors:(fun id -> succs.(id))
          ~execute:(fun id ->
            Mutex.lock mutex;
            List.iter (fun p -> if not finished.(p) then incr violations) preds.(id);
            finished.(id) <- true;
            Mutex.unlock mutex)
          ();
        Alcotest.(check int) "no dependency violations" 0 !violations;
        Alcotest.(check bool) "all finished" true (Array.for_all Fun.id finished)))
    [ 0; 3 ]

(* The same invariant under the virtual executor: replay the layered DAG
   under 10 seeded interleavings of the ready set — schedules the pool's
   OS-driven run may never produce. *)
let test_explorer_respects_dependencies () =
  let rng = Rng.create ~seed:42 in
  let num, succs, indeg = random_layered_dag rng ~layers:6 ~width:8 in
  let g =
    Explore.graph ~num_tasks:num ~in_degree:(Array.copy indeg) ~successors:(fun id ->
      succs.(id))
  in
  let preds = Explore.predecessors g in
  let finished = Array.make num false in
  Explore.for_each_seed ~seeds:10 g (fun ~seed order ->
    Array.fill finished 0 num false;
    Explore.run_schedule g ~order ~execute:(fun id ->
      List.iter
        (fun p ->
          if not finished.(p) then
            Alcotest.failf "seed %d: task %d ran before predecessor %d" seed id p)
        preds.(id);
      finished.(id) <- true);
    Alcotest.(check bool)
      (Printf.sprintf "all finished (seed %d)" seed)
      true
      (Array.for_all Fun.id finished))

let test_dag_exec_linear_chain_order () =
  Pool.with_pool ~num_workers:2 (fun pool ->
    let n = 200 in
    let order = ref [] in
    let mutex = Mutex.create () in
    Dag_exec.run ~pool ~num_tasks:n
      ~in_degree:(Array.init n (fun i -> if i = 0 then 0 else 1))
      ~successors:(fun id -> if id + 1 < n then [ id + 1 ] else [])
      ~execute:(fun id ->
        Mutex.lock mutex;
        order := id :: !order;
        Mutex.unlock mutex)
      ();
    Alcotest.(check (list int)) "strict order" (List.init n (fun i -> n - 1 - i)) !order)

let test_dag_exec_error () =
  Pool.with_pool ~num_workers:0 (fun pool ->
    Alcotest.check_raises "execute error propagates" Boom (fun () ->
      Dag_exec.run ~pool ~num_tasks:3
        ~in_degree:[| 0; 1; 1 |]
        ~successors:(fun id -> if id < 2 then [ id + 1 ] else [])
        ~execute:(fun id -> if id = 1 then raise Boom)
        ()))

let test_check_acyclic () =
  Alcotest.(check bool) "chain is acyclic" true
    (Dag_exec.check_acyclic ~num_tasks:5 ~successors:(fun id ->
       if id + 1 < 5 then [ id + 1 ] else []));
  Alcotest.(check bool) "2-cycle detected" false
    (Dag_exec.check_acyclic ~num_tasks:2 ~successors:(fun id -> [ 1 - id ]))

(* {2 Job-scoped submission: the request server's isolation contract} *)

let test_job_completion () =
  with_pools (fun pool ->
    let a = Atomic.make 0 and b = Atomic.make 0 in
    let ja = Pool.new_job pool and jb = Pool.new_job pool in
    for _ = 1 to 20 do
      Pool.submit_job pool ja (fun () -> Atomic.incr a);
      Pool.submit_job pool jb (fun () -> Atomic.incr b)
    done;
    Pool.join_job pool ja;
    Alcotest.(check int) "job a complete at its own join" 20 (Atomic.get a);
    Pool.join_job pool jb;
    Alcotest.(check int) "job b complete" 20 (Atomic.get b))

let test_job_failure_isolated () =
  with_pools (fun pool ->
    let ok = Atomic.make 0 in
    let ja = Pool.new_job pool and jb = Pool.new_job pool in
    Pool.submit_job pool ja (fun () -> raise Boom);
    for _ = 1 to 10 do
      Pool.submit_job pool jb (fun () -> Atomic.incr ok)
    done;
    (match Pool.join_job pool ja with
    | () -> Alcotest.fail "job a swallowed its failure"
    | exception Boom -> ());
    (* The failing job must not poison its sibling sharing the pool. *)
    Pool.join_job pool jb;
    Alcotest.(check int) "sibling job unaffected" 10 (Atomic.get ok))

let test_job_skips_after_failure () =
  (* Deterministic on the serial pool: the queue drains in order, so the
     task submitted after the failing one is skipped, not run. *)
  Pool.with_pool ~num_workers:0 (fun pool ->
    let ran = Atomic.make 0 in
    let job = Pool.new_job pool in
    Pool.submit_job pool job (fun () -> raise Boom);
    Pool.submit_job pool job (fun () -> Atomic.incr ran);
    Pool.submit_job pool job (fun () -> Atomic.incr ran);
    (match Pool.join_job pool job with
    | () -> Alcotest.fail "failure not raised"
    | exception Boom -> ());
    Alcotest.(check int) "later tasks skipped" 0 (Atomic.get ran);
    Alcotest.(check int) "skips counted" 2 (Pool.job_skipped job))

let test_job_settled_by_pool_cancellation () =
  (* Deterministic on the serial pool: a plain submit fails first, and the
     pool-wide fail-fast cancellation discards the two queued job thunks.
     The job's accounting must settle anyway — before the fix this
     join_job waited forever on a pending count nothing would ever
     decrement. *)
  Pool.with_pool ~num_workers:0 (fun pool ->
    let ran = Atomic.make 0 in
    let job = Pool.new_job pool in
    Pool.submit pool (fun () -> raise Boom);
    Pool.submit_job pool job (fun () -> Atomic.incr ran);
    Pool.submit_job pool job (fun () -> Atomic.incr ran);
    (match Pool.wait_idle pool with
    | () -> Alcotest.fail "pool error not raised"
    | exception Boom -> ());
    Pool.join_job pool job;
    Alcotest.(check int) "cancelled job thunks never ran" 0 (Atomic.get ran);
    Alcotest.(check int) "cancelled thunks counted as skipped" 2
      (Pool.job_skipped job);
    Alcotest.(check int) "pool counted the cancellations" 2
      (Pool.cancelled pool))

let test_job_reusable_pool () =
  with_pools (fun pool ->
    (* After a failed job, the pool keeps serving fresh jobs. *)
    let j1 = Pool.new_job pool in
    Pool.submit_job pool j1 (fun () -> raise Boom);
    (match Pool.join_job pool j1 with () -> () | exception Boom -> ());
    let hits = Atomic.make 0 in
    let j2 = Pool.new_job pool in
    for _ = 1 to 8 do
      Pool.submit_job pool j2 (fun () -> Atomic.incr hits)
    done;
    Pool.join_job pool j2;
    Alcotest.(check int) "pool healthy after failed job" 8 (Atomic.get hits))

let test_job_sequential_reuse () =
  (* One job handle drives several waves in sequence — the request server's
     Monte-Carlo chunking under brown-out submits a wave, joins, then
     submits the next wave into the same handle.  join_job must leave the
     handle clean (pending count zero, error slot cleared) between waves,
     including after a wave that failed. *)
  with_pools (fun pool ->
    let hits = Atomic.make 0 in
    let job = Pool.new_job pool in
    for wave = 1 to 3 do
      for _ = 1 to 4 do
        Pool.submit_job pool job (fun () -> Atomic.incr hits)
      done;
      Pool.join_job pool job;
      Alcotest.(check int) "wave complete at its join" (4 * wave)
        (Atomic.get hits)
    done;
    Pool.submit_job pool job (fun () -> raise Boom);
    (match Pool.join_job pool job with
    | () -> Alcotest.fail "failed wave not raised"
    | exception Boom -> ());
    Pool.submit_job pool job (fun () -> Atomic.incr hits);
    Pool.join_job pool job;
    Alcotest.(check int) "handle clean after a failed wave" 13
      (Atomic.get hits))

let test_job_concurrent_joiners () =
  (* Two threads each drive their own job on one shared pool — the server's
     exact usage (one systhread per connection, one job per request). *)
  with_pools (fun pool ->
    let totals = Array.make 2 0 in
    let threads =
      Array.init 2 (fun i ->
        Thread.create
          (fun () ->
            let job = Pool.new_job pool in
            let c = Atomic.make 0 in
            for _ = 1 to 25 do
              Pool.submit_job pool job (fun () -> Atomic.incr c)
            done;
            Pool.join_job pool job;
            totals.(i) <- Atomic.get c)
          ())
    in
    Array.iter Thread.join threads;
    Alcotest.(check (list int)) "both jobs complete" [ 25; 25 ]
      (Array.to_list totals))

let prop_parallel_init_equals_serial =
  QCheck.Test.make ~name:"parallel_init = Array.init" ~count:50 (QCheck.int_range 0 200)
    (fun n ->
      Pool.with_pool ~num_workers:2 (fun pool ->
        Par.parallel_init ~pool n (fun i -> (i * 13) mod 7) = Array.init n (fun i -> (i * 13) mod 7)))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "submit runs" `Quick test_submit_runs;
          Alcotest.test_case "nested submit" `Quick test_nested_submit;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "raise stress" `Quick test_raise_stress;
          Alcotest.test_case "wait idempotent" `Quick test_wait_idle_idempotent;
        ] );
      ( "job",
        [
          Alcotest.test_case "completion" `Quick test_job_completion;
          Alcotest.test_case "failure isolated" `Quick test_job_failure_isolated;
          Alcotest.test_case "skips after failure" `Quick test_job_skips_after_failure;
          Alcotest.test_case "settled by pool cancellation" `Quick
            test_job_settled_by_pool_cancellation;
          Alcotest.test_case "pool reusable" `Quick test_job_reusable_pool;
          Alcotest.test_case "sequential reuse" `Quick test_job_sequential_reuse;
          Alcotest.test_case "concurrent joiners" `Quick test_job_concurrent_joiners;
        ] );
      ( "par",
        [
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty;
          Alcotest.test_case "init/map" `Quick test_parallel_init_map;
          QCheck_alcotest.to_alcotest prop_parallel_init_equals_serial;
        ] );
      ( "dag",
        [
          Alcotest.test_case "respects dependencies" `Quick test_dag_exec_respects_dependencies;
          Alcotest.test_case "explorer respects dependencies" `Quick
            test_explorer_respects_dependencies;
          Alcotest.test_case "linear chain order" `Quick test_dag_exec_linear_chain_order;
          Alcotest.test_case "error propagation" `Quick test_dag_exec_error;
          Alcotest.test_case "acyclicity check" `Quick test_check_acyclic;
        ] );
    ]
