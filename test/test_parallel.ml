module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Par = Geomix_parallel.Par
module Rng = Geomix_util.Rng
module Explore = Geomix_verify.Explore

exception Boom

let with_pools f =
  (* Exercise both the serial degradation and a real multi-domain pool. *)
  List.iter (fun w -> Pool.with_pool ~num_workers:w f) [ 0; 2 ]

let test_submit_runs () =
  with_pools (fun pool ->
    let hits = Atomic.make 0 in
    for _ = 1 to 50 do
      Pool.submit pool (fun () -> Atomic.incr hits)
    done;
    Pool.wait_idle pool;
    Alcotest.(check int) "all ran" 50 (Atomic.get hits))

let test_nested_submit () =
  with_pools (fun pool ->
    let hits = Atomic.make 0 in
    Pool.submit pool (fun () ->
      Atomic.incr hits;
      Pool.submit pool (fun () -> Atomic.incr hits));
    Pool.wait_idle pool;
    Alcotest.(check int) "nested ran" 2 (Atomic.get hits))

let test_exception_propagates () =
  List.iter
    (fun w ->
      let pool = Pool.create ~num_workers:w () in
      Pool.submit pool (fun () -> raise Boom);
      Alcotest.check_raises "re-raised" Boom (fun () -> Pool.wait_idle pool);
      Pool.shutdown pool)
    [ 0; 2 ]

(* Stress the failure path: repeated rounds of raising tasks mixed with
   healthy ones.  Each round must re-raise, leak no worker domain, and
   leave the pool fully usable for the next round. *)
let test_raise_stress () =
  List.iter
    (fun w ->
      let pool = Pool.create ~num_workers:w () in
      let workers = Pool.num_workers pool in
      for round = 1 to 5 do
        let hits = Atomic.make 0 in
        for i = 1 to 20 do
          Pool.submit pool (fun () ->
            if i mod 4 = 0 then raise Boom else Atomic.incr hits)
        done;
        Alcotest.check_raises
          (Printf.sprintf "round %d re-raised" round)
          Boom
          (fun () -> Pool.wait_idle pool);
        Alcotest.(check int)
          (Printf.sprintf "round %d workers intact" round)
          workers (Pool.num_workers pool);
        (* The pool must still run a clean batch after the failure. *)
        let after = Atomic.make 0 in
        for _ = 1 to 10 do
          Pool.submit pool (fun () -> Atomic.incr after)
        done;
        Pool.wait_idle pool;
        Alcotest.(check int)
          (Printf.sprintf "round %d pool usable after raise" round)
          10 (Atomic.get after)
      done;
      Pool.shutdown pool;
      (* Shutdown after a raising history must be clean and idempotent. *)
      Pool.shutdown pool)
    [ 0; 2 ]

let test_wait_idle_idempotent () =
  with_pools (fun pool ->
    Pool.wait_idle pool;
    Pool.wait_idle pool)

let test_parallel_for () =
  with_pools (fun pool ->
    let out = Array.make 100 0 in
    Par.parallel_for ~pool ~lo:0 ~hi:100 (fun i -> out.(i) <- i * i);
    Array.iteri (fun i v -> Alcotest.(check int) "value" (i * i) v) out)

let test_parallel_for_empty () =
  with_pools (fun pool -> Par.parallel_for ~pool ~lo:5 ~hi:5 (fun _ -> assert false))

let test_parallel_init_map () =
  with_pools (fun pool ->
    let a = Par.parallel_init ~pool 20 (fun i -> i + 1) in
    Alcotest.(check int) "init" 20 a.(19);
    let b = Par.parallel_map ~pool (fun x -> 2 * x) a in
    Alcotest.(check int) "map" 40 b.(19))

(* A random layered DAG: edges only go from layer k to k+1, so it is
   acyclic by construction; execution must respect every edge. *)
let random_layered_dag rng ~layers ~width =
  let num = layers * width in
  let succs = Array.make num [] in
  let indeg = Array.make num 0 in
  for l = 0 to layers - 2 do
    for i = 0 to width - 1 do
      let src = (l * width) + i in
      for j = 0 to width - 1 do
        if Rng.float rng < 0.4 then begin
          let dst = ((l + 1) * width) + j in
          succs.(src) <- dst :: succs.(src);
          indeg.(dst) <- indeg.(dst) + 1
        end
      done
    done
  done;
  (num, succs, indeg)

let test_dag_exec_respects_dependencies () =
  List.iter
    (fun w ->
      Pool.with_pool ~num_workers:w (fun pool ->
        let rng = Rng.create ~seed:42 in
        let num, succs, indeg = random_layered_dag rng ~layers:6 ~width:8 in
        let finished = Array.make num false in
        let mutex = Mutex.create () in
        let violations = ref 0 in
        let preds = Array.make num [] in
        Array.iteri (fun src l -> List.iter (fun d -> preds.(d) <- src :: preds.(d)) l) succs;
        Dag_exec.run ~pool ~num_tasks:num ~in_degree:(Array.copy indeg)
          ~successors:(fun id -> succs.(id))
          ~execute:(fun id ->
            Mutex.lock mutex;
            List.iter (fun p -> if not finished.(p) then incr violations) preds.(id);
            finished.(id) <- true;
            Mutex.unlock mutex)
          ();
        Alcotest.(check int) "no dependency violations" 0 !violations;
        Alcotest.(check bool) "all finished" true (Array.for_all Fun.id finished)))
    [ 0; 3 ]

(* The same invariant under the virtual executor: replay the layered DAG
   under 10 seeded interleavings of the ready set — schedules the pool's
   OS-driven run may never produce. *)
let test_explorer_respects_dependencies () =
  let rng = Rng.create ~seed:42 in
  let num, succs, indeg = random_layered_dag rng ~layers:6 ~width:8 in
  let g =
    Explore.graph ~num_tasks:num ~in_degree:(Array.copy indeg) ~successors:(fun id ->
      succs.(id))
  in
  let preds = Explore.predecessors g in
  let finished = Array.make num false in
  Explore.for_each_seed ~seeds:10 g (fun ~seed order ->
    Array.fill finished 0 num false;
    Explore.run_schedule g ~order ~execute:(fun id ->
      List.iter
        (fun p ->
          if not finished.(p) then
            Alcotest.failf "seed %d: task %d ran before predecessor %d" seed id p)
        preds.(id);
      finished.(id) <- true);
    Alcotest.(check bool)
      (Printf.sprintf "all finished (seed %d)" seed)
      true
      (Array.for_all Fun.id finished))

let test_dag_exec_linear_chain_order () =
  Pool.with_pool ~num_workers:2 (fun pool ->
    let n = 200 in
    let order = ref [] in
    let mutex = Mutex.create () in
    Dag_exec.run ~pool ~num_tasks:n
      ~in_degree:(Array.init n (fun i -> if i = 0 then 0 else 1))
      ~successors:(fun id -> if id + 1 < n then [ id + 1 ] else [])
      ~execute:(fun id ->
        Mutex.lock mutex;
        order := id :: !order;
        Mutex.unlock mutex)
      ();
    Alcotest.(check (list int)) "strict order" (List.init n (fun i -> n - 1 - i)) !order)

let test_dag_exec_error () =
  Pool.with_pool ~num_workers:0 (fun pool ->
    Alcotest.check_raises "execute error propagates" Boom (fun () ->
      Dag_exec.run ~pool ~num_tasks:3
        ~in_degree:[| 0; 1; 1 |]
        ~successors:(fun id -> if id < 2 then [ id + 1 ] else [])
        ~execute:(fun id -> if id = 1 then raise Boom)
        ()))

let test_check_acyclic () =
  Alcotest.(check bool) "chain is acyclic" true
    (Dag_exec.check_acyclic ~num_tasks:5 ~successors:(fun id ->
       if id + 1 < 5 then [ id + 1 ] else []));
  Alcotest.(check bool) "2-cycle detected" false
    (Dag_exec.check_acyclic ~num_tasks:2 ~successors:(fun id -> [ 1 - id ]))

let prop_parallel_init_equals_serial =
  QCheck.Test.make ~name:"parallel_init = Array.init" ~count:50 (QCheck.int_range 0 200)
    (fun n ->
      Pool.with_pool ~num_workers:2 (fun pool ->
        Par.parallel_init ~pool n (fun i -> (i * 13) mod 7) = Array.init n (fun i -> (i * 13) mod 7)))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "submit runs" `Quick test_submit_runs;
          Alcotest.test_case "nested submit" `Quick test_nested_submit;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "raise stress" `Quick test_raise_stress;
          Alcotest.test_case "wait idempotent" `Quick test_wait_idle_idempotent;
        ] );
      ( "par",
        [
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty;
          Alcotest.test_case "init/map" `Quick test_parallel_init_map;
          QCheck_alcotest.to_alcotest prop_parallel_init_equals_serial;
        ] );
      ( "dag",
        [
          Alcotest.test_case "respects dependencies" `Quick test_dag_exec_respects_dependencies;
          Alcotest.test_case "explorer respects dependencies" `Quick
            test_explorer_respects_dependencies;
          Alcotest.test_case "linear chain order" `Quick test_dag_exec_linear_chain_order;
          Alcotest.test_case "error propagation" `Quick test_dag_exec_error;
          Alcotest.test_case "acyclicity check" `Quick test_check_acyclic;
        ] );
    ]
