(* Fault-injection and recovery layer: plan determinism, supervised retry,
   fail-fast pool cancellation, snapshot-sound re-execution in Dag_exec and
   Dtd, and the precision-escalation fallback of the mixed-precision
   Cholesky.  Everything is seeded — failures replay exactly. *)

module Fault = Geomix_fault.Fault
module Retry = Geomix_fault.Retry
module Metrics = Geomix_obs.Metrics
module Pool = Geomix_parallel.Pool
module Dag_exec = Geomix_parallel.Dag_exec
module Dtd = Geomix_runtime.Dtd
module Mat = Geomix_linalg.Mat
module Blas = Geomix_linalg.Blas
module Tiled = Geomix_tile.Tiled
module Fp = Geomix_precision.Fpformat
module Pm = Geomix_core.Precision_map
module Chol = Geomix_core.Mp_cholesky
module Explore = Geomix_verify.Explore
module Rng = Geomix_util.Rng

let qtest t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xFA17 |]) t

exception Boom

let counter_of snap name =
  match Metrics.find snap name with
  | Some (Metrics.Counter c) -> c
  | _ -> Alcotest.failf "counter %s missing" name

(* Fault plan *)

let test_plan_deterministic () =
  let mk () =
    Fault.plan ~rate:0.5 ~kinds:[ Fault.Transient; Fault.Crash_after_write ]
      ~sleep:ignore ~seed:11 ()
  in
  let p1 = mk () and p2 = mk () in
  for i = 0 to 199 do
    let task = Printf.sprintf "T(%d)" i in
    List.iter
      (fun site ->
        List.iter
          (fun attempt ->
            Alcotest.(check bool)
              "same decision from same seed" true
              (Fault.decide p1 ~site ~task ~attempt
              = Fault.decide p2 ~site ~task ~attempt))
          [ 1; 2; 3 ])
      [ "pool"; "exec" ]
  done

let test_plan_seed_matters () =
  let p0 = Fault.plan ~rate:0.5 ~sleep:ignore ~seed:0 () in
  let p1 = Fault.plan ~rate:0.5 ~sleep:ignore ~seed:1 () in
  let differs = ref false in
  for i = 0 to 99 do
    let task = Printf.sprintf "T(%d)" i in
    if
      Fault.decide p0 ~site:"exec" ~task ~attempt:1
      <> Fault.decide p1 ~site:"exec" ~task ~attempt:1
    then differs := true
  done;
  Alcotest.(check bool) "different seeds draw differently" true !differs

let test_plan_rate_extremes () =
  let none = Fault.plan ~rate:0. ~sleep:ignore ~seed:7 () in
  let all = Fault.plan ~rate:1. ~sleep:ignore ~seed:7 () in
  for i = 0 to 49 do
    let task = Printf.sprintf "T(%d)" i in
    Alcotest.(check bool)
      "rate 0 never faults" true
      (Fault.decide none ~site:"exec" ~task ~attempt:1 = None);
    Alcotest.(check bool)
      "rate 1 faults every first attempt" true
      (Fault.decide all ~site:"exec" ~task ~attempt:1 <> None);
    (* fail_attempts defaults to 1: the retry is guaranteed clean. *)
    Alcotest.(check bool)
      "attempt 2 never eligible by default" true
      (Fault.decide all ~site:"exec" ~task ~attempt:2 = None)
  done

let test_plan_empirical_rate () =
  let p = Fault.plan ~rate:0.2 ~sleep:ignore ~seed:3 () in
  let hits = ref 0 in
  for i = 0 to 999 do
    if Fault.decide p ~site:"exec" ~task:(Printf.sprintf "T(%d)" i) ~attempt:1 <> None
    then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.2 over 1000 draws hit %d times" !hits)
    true
    (!hits > 120 && !hits < 280)

let test_plan_only_filter () =
  let p =
    Fault.plan ~rate:1.
      ~only:(fun name -> String.length name > 0 && name.[0] = 'G')
      ~sleep:ignore ~seed:5 ()
  in
  Alcotest.(check bool)
    "filtered-in task faults" true
    (Fault.decide p ~site:"exec" ~task:"GEMM(2,1,0)" ~attempt:1 <> None);
  Alcotest.(check bool)
    "filtered-out task never faults" true
    (Fault.decide p ~site:"exec" ~task:"POTRF(0)" ~attempt:1 = None)

let test_plan_validates () =
  List.iter
    (fun f ->
      match f () with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> ignore (Fault.plan ~rate:1.5 ~seed:0 ()));
      (fun () -> ignore (Fault.plan ~rate:(-0.1) ~seed:0 ()));
      (fun () -> ignore (Fault.plan ~pivot_rate:2. ~seed:0 ()));
      (fun () -> ignore (Fault.plan ~stall:(-1.) ~seed:0 ()));
      (fun () -> ignore (Fault.plan ~fail_attempts:0 ~seed:0 ()));
      (fun () -> ignore (Fault.plan ~kinds:[] ~seed:0 ()));
    ]

let test_wrap_kinds () =
  (* Transient raises before the body; Crash_after_write after it; Stall
     sleeps on the plan's clock then runs it. *)
  let ran = ref false in
  let transient = Fault.plan ~rate:1. ~kinds:[ Fault.Transient ] ~sleep:ignore ~seed:1 () in
  (try Fault.wrap transient ~site:"exec" ~task:"t" ~attempt:1 (fun () -> ran := true)
   with Fault.Injected { kind = Fault.Transient; _ } -> ());
  Alcotest.(check bool) "transient skips body" false !ran;
  let crash = Fault.plan ~rate:1. ~kinds:[ Fault.Crash_after_write ] ~sleep:ignore ~seed:1 () in
  (try Fault.wrap crash ~site:"exec" ~task:"t" ~attempt:1 (fun () -> ran := true)
   with Fault.Injected { kind = Fault.Crash_after_write; _ } -> ());
  Alcotest.(check bool) "crash-after-write runs body" true !ran;
  let slept = ref 0. in
  let stall =
    Fault.plan ~rate:1. ~kinds:[ Fault.Stall ] ~stall:0.25
      ~sleep:(fun d -> slept := !slept +. d)
      ~seed:1 ()
  in
  ran := false;
  Fault.wrap stall ~site:"exec" ~task:"t" ~attempt:1 (fun () -> ran := true);
  Alcotest.(check bool) "stall runs body" true !ran;
  Alcotest.(check (float 0.)) "stall slept on the plan clock" 0.25 !slept;
  Alcotest.(check int) "three injections counted" 3
    (Fault.injected transient + Fault.injected crash + Fault.injected stall)

(* Retry *)

let test_retry_backoff_on_virtual_clock () =
  let sleep, elapsed = Retry.virtual_clock () in
  let policy =
    {
      Retry.max_attempts = 4;
      base_delay = 0.01;
      factor = 2.;
      max_delay = 0.025;
      jitter = 0.;
      sleep;
      retryable = (fun _ -> true);
    }
  in
  let calls = ref 0 in
  Retry.run policy (fun ~attempt ->
    incr calls;
    if attempt < 4 then raise Boom);
  Alcotest.(check int) "four attempts" 4 !calls;
  (* 0.01 + 0.02 + min 0.025 0.04 — the cap bites on the third backoff. *)
  Alcotest.(check (float 1e-12)) "backoff sum with cap" 0.055 (elapsed ())

let test_retry_delay_for () =
  let policy = { Retry.default with base_delay = 1e-3; factor = 2.; max_delay = 0.1 } in
  Alcotest.(check (float 1e-15)) "attempt 1" 1e-3 (Retry.delay_for policy ~attempt:1);
  Alcotest.(check (float 1e-15)) "attempt 2" 2e-3 (Retry.delay_for policy ~attempt:2);
  Alcotest.(check (float 1e-15)) "attempt 8 capped" 0.1 (Retry.delay_for policy ~attempt:8)

let test_retry_jitter () =
  let policy =
    { Retry.default with base_delay = 1e-2; factor = 2.; max_delay = 1.; jitter = 0.5 }
  in
  (* Jittered delays stay in [(1 − jitter)·d0, d0], are a pure function of
     (salt, attempt), and decorrelate across salts. *)
  let spread = ref false in
  for attempt = 1 to 6 do
    let d0 = 1e-2 *. (2. ** float_of_int (attempt - 1)) in
    let seen = Hashtbl.create 16 in
    for salt = 0 to 19 do
      let d = Retry.delay_for ~salt policy ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "salt %d attempt %d within window" salt attempt)
        true
        (d <= d0 +. 1e-15 && d >= (0.5 *. d0) -. 1e-15);
      Alcotest.(check (float 0.)) "replay is exact" d
        (Retry.delay_for ~salt policy ~attempt);
      Hashtbl.replace seen d ()
    done;
    if Hashtbl.length seen > 10 then spread := true
  done;
  Alcotest.(check bool) "salts decorrelate" true !spread;
  (* Without a salt the schedule is the deterministic one regardless of
     the jitter setting. *)
  Alcotest.(check (float 1e-15)) "no salt, no jitter" 2e-2
    (Retry.delay_for policy ~attempt:2)

let test_retry_jitter_respects_cap () =
  (* The cap applies after jitter: even the luckiest draw never exceeds
     max_delay, observable on a virtual clock. *)
  let sleep, elapsed = Retry.virtual_clock () in
  let policy =
    {
      Retry.max_attempts = 6;
      base_delay = 0.01;
      factor = 4.;
      max_delay = 0.05;
      jitter = 0.9;
      sleep;
      retryable = (fun _ -> true);
    }
  in
  let calls = ref 0 in
  Retry.run ~salt:42 policy (fun ~attempt ->
    incr calls;
    if attempt < 6 then raise Boom);
  Alcotest.(check int) "six attempts" 6 !calls;
  (* Five backoffs, each in (0, max_delay]. *)
  Alcotest.(check bool) "total bounded by attempts × cap" true
    (elapsed () <= 5. *. 0.05 +. 1e-12 && elapsed () > 0.);
  Alcotest.check_raises "jitter outside [0, 1] rejected"
    (Invalid_argument "Retry.run: jitter outside [0, 1]")
    (fun () ->
      Retry.run { policy with jitter = 1.5 } (fun ~attempt:_ -> ()))

let test_retry_restore_order () =
  (* restore runs before every re-execution, never before the first. *)
  let events = ref [] in
  let note e = events := e :: !events in
  Retry.run
    ~on_retry:(fun ~attempt _ -> note (Printf.sprintf "retry%d" attempt))
    ~restore:(fun () -> note "restore")
    (Retry.immediate ~max_attempts:3 ())
    (fun ~attempt ->
      note (Printf.sprintf "attempt%d" attempt);
      if attempt < 3 then raise Boom);
  Alcotest.(check (list string)) "supervision order"
    [ "attempt1"; "retry1"; "restore"; "attempt2"; "retry2"; "restore"; "attempt3" ]
    (List.rev !events)

let test_retry_not_retryable () =
  let calls = ref 0 in
  let policy =
    { (Retry.immediate ~max_attempts:5 ()) with retryable = (fun e -> e <> Boom) }
  in
  Alcotest.check_raises "non-retryable propagates" Boom (fun () ->
    Retry.run policy (fun ~attempt:_ ->
      incr calls;
      raise Boom));
  Alcotest.(check int) "single attempt" 1 !calls

let test_retry_budget_exhausted () =
  let calls = ref 0 in
  Alcotest.check_raises "final failure propagates" Boom (fun () ->
    Retry.run (Retry.immediate ~max_attempts:3 ()) (fun ~attempt:_ ->
      incr calls;
      raise Boom));
  Alcotest.(check int) "exactly max_attempts" 3 !calls;
  Alcotest.check_raises "max_attempts < 1 rejected"
    (Invalid_argument "Retry.run: max_attempts < 1")
    (fun () -> Retry.run { Retry.default with max_attempts = 0 } (fun ~attempt:_ -> ()))

(* Pool: fail-fast cancellation *)

let test_pool_cancels_pending_serial () =
  (* Serial drain is deterministic: items run in order, the failure at item
     3 cancels the six not-yet-started ones. *)
  let pool = Pool.create ~num_workers:0 () in
  let hits = ref 0 in
  for i = 0 to 9 do
    Pool.submit pool (fun () -> if i = 3 then raise Boom else incr hits)
  done;
  Alcotest.check_raises "first error re-raised" Boom (fun () -> Pool.wait_idle pool);
  Alcotest.(check int) "items before the failure ran" 3 !hits;
  Alcotest.(check int) "items after the failure cancelled" 6 (Pool.cancelled pool);
  (* The pool stays usable after a cancellation round. *)
  let after = ref 0 in
  for _ = 1 to 5 do
    Pool.submit pool (fun () -> incr after)
  done;
  Pool.wait_idle pool;
  Alcotest.(check int) "usable after cancellation" 5 !after;
  Pool.shutdown pool

let test_pool_cancels_pending_parallel () =
  (* With real workers the interleaving is nondeterministic; assert the
     accounting invariant: ran + cancelled = submitted, and nothing runs
     after wait_idle reports the error. *)
  let pool = Pool.create ~num_workers:2 () in
  let hits = Atomic.make 0 in
  let total = 200 in
  for i = 0 to total - 1 do
    Pool.submit pool (fun () -> if i = 50 then raise Boom else Atomic.incr hits)
  done;
  Alcotest.check_raises "first error re-raised" Boom (fun () -> Pool.wait_idle pool);
  let ran = Atomic.get hits and cancelled = Pool.cancelled pool in
  Alcotest.(check int) "ran + failed + cancelled = submitted" total (ran + 1 + cancelled);
  Pool.shutdown pool

let test_pool_error_backtrace_preserved () =
  (* reraise must rethrow the recorded exception (with its original
     backtrace — observable here as the exception itself surviving a
     cancellation round unchanged). *)
  let pool = Pool.create ~num_workers:0 () in
  Pool.submit pool (fun () -> raise (Failure "original"));
  Pool.submit pool (fun () -> ());
  Alcotest.check_raises "identity preserved" (Failure "original") (fun () ->
    Pool.shutdown pool)

let test_pool_site_faults () =
  let reg = Metrics.create () in
  let faults = Fault.plan ~obs:reg ~rate:1. ~sleep:ignore ~seed:2 () in
  let pool = Pool.create ~faults ~num_workers:0 () in
  let hits = ref 0 in
  for _ = 1 to 3 do
    Pool.submit pool (fun () -> incr hits)
  done;
  (try Pool.wait_idle pool
   with Fault.Injected { kind = Fault.Transient; _ } -> ());
  Alcotest.(check int) "first thunk faulted, rest cancelled" 0 !hits;
  Alcotest.(check int) "one injection" 1 (Fault.injected faults);
  Alcotest.(check int) "two cancellations" 2 (Pool.cancelled pool);
  let snap = Metrics.snapshot reg in
  Alcotest.(check int) "fault.injected mirrored" 1 (counter_of snap "fault.injected");
  Pool.shutdown pool

let test_pool_job_faults_stay_in_job () =
  (* A fault injected into a job-scoped thunk belongs to the job: join_job
     re-raises it, the rest of the job is skipped, and the pool's own
     fail-fast slot stays empty so unrelated work is not cancelled. *)
  let faults = Fault.plan ~rate:1. ~sleep:ignore ~seed:2 () in
  let pool = Pool.create ~faults ~num_workers:0 () in
  let hits = ref 0 in
  let job = Pool.new_job pool in
  Pool.submit_job pool job (fun () -> incr hits);
  Pool.submit_job pool job (fun () -> incr hits);
  (match Pool.join_job pool job with
   | () -> Alcotest.fail "injected fault not raised by join_job"
   | exception Fault.Injected _ -> ());
  Alcotest.(check int) "faulted job ran nothing" 0 !hits;
  Alcotest.(check int) "rest of the job skipped" 1 (Pool.job_skipped job);
  Alcotest.(check int) "no pool-wide cancellation" 0 (Pool.cancelled pool);
  (* wait_idle must not re-raise the job's fault. *)
  Pool.wait_idle pool;
  Pool.shutdown pool

(* Dag_exec: supervised retry with snapshot restore *)

let chain n =
  ( n,
    Array.init n (fun i -> if i = 0 then 0 else 1),
    fun i -> if i < n - 1 then [ i + 1 ] else [] )

let run_chain ?faults ?retry ?capture ~cells () =
  let n = Array.length cells in
  let num_tasks, in_degree, successors = chain n in
  Pool.with_pool ~num_workers:0 (fun pool ->
    Dag_exec.run ?faults ?retry ?capture ~pool ~num_tasks ~in_degree ~successors
      ~execute:(fun i -> cells.(i) <- cells.(i) +. 1.)
      ())

let test_dag_exec_transient_retry () =
  let cells = Array.make 8 0. in
  let faults = Fault.plan ~rate:1. ~kinds:[ Fault.Transient ] ~sleep:ignore ~seed:4 () in
  run_chain ~faults ~retry:(Retry.immediate ()) ~cells ();
  Alcotest.(check (array (float 0.))) "every task ran exactly once" (Array.make 8 1.) cells;
  Alcotest.(check int) "every task faulted once" 8 (Fault.injected faults)

let test_dag_exec_crash_double_applies_without_capture () =
  (* The demonstration the snapshot machinery exists for: a crash-after-write
     retried without restore double-applies the accumulation... *)
  let cells = Array.make 4 0. in
  let faults =
    Fault.plan ~rate:1. ~kinds:[ Fault.Crash_after_write ] ~sleep:ignore ~seed:4 ()
  in
  run_chain ~faults ~retry:(Retry.immediate ()) ~cells ();
  Alcotest.(check (array (float 0.)))
    "no capture: every increment applied twice" (Array.make 4 2.) cells;
  (* ...and the per-task snapshot makes the same run exact. *)
  let cells = Array.make 4 0. in
  let faults =
    Fault.plan ~rate:1. ~kinds:[ Fault.Crash_after_write ] ~sleep:ignore ~seed:4 ()
  in
  let capture i =
    let saved = cells.(i) in
    fun () -> cells.(i) <- saved
  in
  run_chain ~faults ~retry:(Retry.immediate ()) ~capture ~cells ();
  Alcotest.(check (array (float 0.)))
    "with capture: exactly once" (Array.make 4 1.) cells

let test_dag_exec_budget_exhausted_propagates () =
  let cells = Array.make 4 0. in
  let faults =
    Fault.plan ~rate:1. ~kinds:[ Fault.Transient ] ~fail_attempts:10 ~sleep:ignore
      ~seed:4 ()
  in
  match run_chain ~faults ~retry:(Retry.immediate ~max_attempts:2 ()) ~cells () with
  | () -> Alcotest.fail "expected Injected to propagate"
  | exception Fault.Injected { attempt; _ } ->
    Alcotest.(check int) "failed on the final attempt" 2 attempt;
    Alcotest.(check (float 0.)) "no task completed" 0. (Array.fold_left ( +. ) 0. cells)

(* Dtd: footprint snapshots and recovery metrics *)

let test_dtd_snapshot_recovery () =
  let run ~faulted =
    let cells = Array.make 2 0. in
    let g = Dtd.create () in
    for i = 0 to 7 do
      let key = i mod 2 in
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "ACC(%d)" i)
           ~reads:[] ~writes:[ key ]
           (fun () -> cells.(key) <- cells.(key) +. float_of_int (i + 1)))
    done;
    let reg = Metrics.create () in
    let snapshot key =
      let saved = cells.(key) in
      fun () -> cells.(key) <- saved
    in
    (if faulted then
       let faults =
         Fault.plan ~rate:1. ~kinds:[ Fault.Crash_after_write ] ~sleep:ignore ~seed:9 ()
       in
       Dtd.execute ~obs:reg
         ~datum_bytes:(fun _ -> 8)
         ~faults ~retry:(Retry.immediate ()) ~snapshot g
     else Dtd.execute g);
    (cells, Metrics.snapshot reg)
  in
  let clean, _ = run ~faulted:false in
  let recovered, snap = run ~faulted:true in
  Alcotest.(check (array (float 0.))) "recovered run = fault-free run" clean recovered;
  Alcotest.(check int) "dtd.retries" 8 (counter_of snap "dtd.retries");
  Alcotest.(check int) "dtd.restores" 8 (counter_of snap "dtd.restores");
  Alcotest.(check int) "dtd.restored_bytes (8 per written datum)" 64
    (counter_of snap "dtd.restored_bytes")

(* Mp_cholesky: chaos equivalence and precision escalation *)

let spd ~nt ~nb =
  Tiled.init ~n:(nt * nb) ~nb (fun i j ->
    (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))

let test_cholesky_global_pivot_index () =
  (* Indefiniteness in block 1 must report the global row, not the local
     tile row. *)
  let nt = 2 and nb = 4 in
  let a =
    Tiled.init ~n:(nt * nb) ~nb (fun i j ->
      if i <> j then 0. else if i < nb then 1. else -1.)
  in
  Alcotest.check_raises "global pivot index" (Blas.Not_positive_definite nb)
    (fun () -> Chol.factorize ~pmap:(Pm.uniform ~nt Fp.Fp64) a)

let test_cholesky_chaos_equivalence () =
  (* Acceptance: a seeded chaos run at ≥10% transient rate completes and the
     recovered factor is bitwise identical to the fault-free run — under the
     serial pool and a real multi-domain one. *)
  let nt = 4 and nb = 8 in
  let pmap = Pm.two_level ~nt ~off_diag:Fp.Fp16_32 in
  let reference = spd ~nt ~nb in
  Chol.factorize ~pmap reference;
  List.iter
    (fun workers ->
      for seed = 0 to 4 do
        let a = spd ~nt ~nb in
        let faults =
          Fault.plan ~rate:0.3
            ~kinds:[ Fault.Transient; Fault.Crash_after_write ]
            ~sleep:ignore ~seed ()
        in
        Pool.with_pool ~num_workers:workers (fun pool ->
          Chol.factorize ~pool ~faults ~retry:(Retry.immediate ()) ~pmap a);
        Alcotest.(check (float 0.))
          (Printf.sprintf "seed %d, %d workers: bitwise identical" seed workers)
          0.
          (Tiled.rel_diff a ~reference)
      done)
    [ 0; 2 ]

let test_cholesky_pivot_escalation_recovers () =
  let nt = 4 and nb = 8 in
  let pmap = Pm.two_level ~nt ~off_diag:Fp.Fp16_32 in
  let reg = Metrics.create () in
  let a = spd ~nt ~nb in
  let faults = Fault.plan ~obs:reg ~pivot_rate:1. ~sleep:ignore ~seed:3 () in
  let report = Chol.factorize_robust ~faults ~obs:reg ~pmap a in
  Alcotest.(check bool) "factorized" true (report.Chol.outcome = Chol.Factorized);
  Alcotest.(check bool) "escalations recorded" true (report.Chol.escalations <> []);
  Alcotest.(check bool) "pivot injections fired" true (Fault.pivots faults > 0);
  (* The recovered factor equals a fault-free factorization under the map
     the final round actually used. *)
  let reference = spd ~nt ~nb in
  Chol.factorize ~pmap:report.Chol.pmap reference;
  Alcotest.(check (float 0.)) "equals fault-free run under escalated map" 0.
    (Tiled.rel_diff a ~reference);
  let snap = Metrics.snapshot reg in
  Alcotest.(check int) "recovery.band_escalations"
    (List.length
       (List.filter (fun e -> e.Chol.scope = Chol.Band) report.Chol.escalations))
    (counter_of snap "recovery.band_escalations")

let test_cholesky_escalation_reaches_full_map () =
  (* A tight band budget with injections armed on every round forces the
     Band → Full progression. *)
  let nt = 4 and nb = 8 in
  let pmap = Pm.two_level ~nt ~off_diag:Fp.Fp16_32 in
  let a = spd ~nt ~nb in
  let faults =
    Fault.plan ~pivot_rate:1. ~fail_attempts:10 ~sleep:ignore ~seed:3 ()
  in
  let report = Chol.factorize_robust ~faults ~max_band_escalations:1 ~pmap a in
  Alcotest.(check bool) "factorized" true (report.Chol.outcome = Chol.Factorized);
  Alcotest.(check bool) "full escalation reached" true
    (List.exists (fun e -> e.Chol.scope = Chol.Full) report.Chol.escalations);
  Alcotest.(check bool) "final map is all FP64" true (Pm.all_fp64 report.Chol.pmap)

let test_cholesky_true_indefiniteness () =
  let nt = 2 and nb = 4 in
  let make () = Tiled.init ~n:(nt * nb) ~nb (fun i j -> if i = j then -1. else 0.) in
  let a = make () in
  let reg = Metrics.create () in
  (* Starts mixed: escalation walks band → full, then reports Indefinite. *)
  let report =
    Chol.factorize_robust ~obs:reg ~pmap:(Pm.two_level ~nt ~off_diag:Fp.Fp16_32) a
  in
  (match report.Chol.outcome with
  | Chol.Indefinite p -> Alcotest.(check int) "failing global pivot" 0 p
  | Chol.Factorized -> Alcotest.fail "indefinite matrix factorized");
  Alcotest.(check bool) "escalation was attempted first" true
    (report.Chol.escalations <> []);
  Alcotest.(check bool) "rounds > 1" true (report.Chol.rounds > 1);
  (* The input must be handed back untouched. *)
  Alcotest.(check (float 0.)) "matrix restored" 0.
    (Tiled.rel_diff a ~reference:(make ()));
  Alcotest.(check int) "recovery.indefinite" 1
    (counter_of (Metrics.snapshot reg) "recovery.indefinite")

(* Likelihood: robust evaluation statuses *)

let test_likelihood_robust_clean () =
  let module Locations = Geomix_geostat.Locations in
  let module Covariance = Geomix_geostat.Covariance in
  let module Field = Geomix_geostat.Field in
  let module Likelihood = Geomix_geostat.Likelihood in
  let rng = Rng.create ~seed:5 in
  let locs = Locations.morton_sort (Locations.jittered_grid_2d ~rng ~n:49) in
  let cov =
    Covariance.sqexp ~nugget:Covariance.default_nugget ~sigma2:1. ~beta:0.1 ()
  in
  let z = Field.synthesize ~rng ~cov locs in
  let engine = Likelihood.mixed ~u_req:1e-6 ~nb:16 () in
  let plain = Likelihood.evaluate engine ~cov ~locs ~z in
  let robust = Likelihood.evaluate_robust engine ~cov ~locs ~z in
  Alcotest.(check bool) "clean status" true (robust.Likelihood.status = Likelihood.Clean);
  Alcotest.(check (float 0.)) "same loglik as evaluate" plain.Likelihood.loglik
    robust.Likelihood.loglik;
  Alcotest.(check (float 0.)) "loglik shortcut agrees" robust.Likelihood.loglik
    (Likelihood.loglik engine ~cov ~locs ~z)

(* Property: supervised faulted replay = fault-free run, across seeded
   interleavings of the ready set (the Explore virtual executor stands in
   for the OS scheduler). *)

let build_cholesky_dtd a =
  let nt = Tiled.nt a in
  let g = Dtd.create () in
  let key i j = (i * nt) + j in
  for k = 0 to nt - 1 do
    ignore
      (Dtd.insert g ~name:(Printf.sprintf "POTRF(%d)" k) ~reads:[] ~writes:[ key k k ]
         (fun () -> Blas.potrf_lower (Tiled.tile a k k)));
    for m = k + 1 to nt - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "TRSM(%d,%d)" m k)
           ~reads:[ key k k ] ~writes:[ key m k ]
           (fun () -> Blas.trsm_right_lower_trans ~l:(Tiled.tile a k k) (Tiled.tile a m k)))
    done;
    for m = k + 1 to nt - 1 do
      ignore
        (Dtd.insert g
           ~name:(Printf.sprintf "SYRK(%d,%d)" m k)
           ~reads:[ key m k ] ~writes:[ key m m ]
           (fun () ->
             Blas.syrk_lower ~alpha:(-1.) (Tiled.tile a m k) ~beta:1. (Tiled.tile a m m)));
      for n = k + 1 to m - 1 do
        ignore
          (Dtd.insert g
             ~name:(Printf.sprintf "GEMM(%d,%d,%d)" m n k)
             ~reads:[ key m k; key n k ]
             ~writes:[ key m n ]
             (fun () ->
               Blas.gemm_nt ~alpha:(-1.) (Tiled.tile a m k) (Tiled.tile a n k) ~beta:1.
                 (Tiled.tile a m n)))
      done
    done
  done;
  g

let prop_faulted_replay_bitwise_identical =
  QCheck.Test.make
    ~name:"supervised faulted replay = fault-free run under any interleaving"
    ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (sched_seed, fault_seed) ->
      let n = 32 and nb = 8 in
      let dense =
        Mat.init ~rows:n ~cols:n (fun i j ->
          (if i = j then 1.0 else 0.) +. exp (-0.05 *. float_of_int (abs (i - j))))
      in
      let reference = Tiled.of_dense ~nb dense in
      let gref = build_cholesky_dtd reference in
      ignore
        (Explore.run_random (Explore.of_dtd gref) ~seed:sched_seed
           ~execute:(Dtd.execute_task gref));
      let a = Tiled.of_dense ~nb dense in
      let g = build_cholesky_dtd a in
      let nt = Tiled.nt a in
      let tile_of_key key = Tiled.tile a (key / nt) (key mod nt) in
      let faults =
        Fault.plan ~rate:0.3
          ~kinds:[ Fault.Transient; Fault.Crash_after_write ]
          ~sleep:ignore ~seed:fault_seed ()
      in
      let policy = Retry.immediate () in
      let execute id =
        let name = Dtd.name g id in
        let _, writes = Dtd.footprint g id in
        let saved = List.map (fun k -> (k, Mat.copy (tile_of_key k))) writes in
        let restore () =
          List.iter (fun (k, s) -> Mat.blit ~src:s ~dst:(tile_of_key k)) saved
        in
        Retry.run ~restore policy (fun ~attempt ->
          Fault.wrap faults ~site:"exec" ~task:name ~attempt (fun () ->
            Dtd.execute_task g id))
      in
      ignore (Explore.run_random (Explore.of_dtd g) ~seed:sched_seed ~execute);
      Tiled.rel_diff a ~reference = 0.)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_plan_deterministic;
          Alcotest.test_case "seed matters" `Quick test_plan_seed_matters;
          Alcotest.test_case "rate extremes" `Quick test_plan_rate_extremes;
          Alcotest.test_case "empirical rate" `Quick test_plan_empirical_rate;
          Alcotest.test_case "only filter" `Quick test_plan_only_filter;
          Alcotest.test_case "validation" `Quick test_plan_validates;
          Alcotest.test_case "wrap kinds" `Quick test_wrap_kinds;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff on virtual clock" `Quick
            test_retry_backoff_on_virtual_clock;
          Alcotest.test_case "delay arithmetic" `Quick test_retry_delay_for;
          Alcotest.test_case "decorrelating jitter" `Quick test_retry_jitter;
          Alcotest.test_case "jitter respects cap" `Quick
            test_retry_jitter_respects_cap;
          Alcotest.test_case "restore order" `Quick test_retry_restore_order;
          Alcotest.test_case "non-retryable" `Quick test_retry_not_retryable;
          Alcotest.test_case "budget exhausted" `Quick test_retry_budget_exhausted;
        ] );
      ( "pool fail-fast",
        [
          Alcotest.test_case "cancels pending (serial)" `Quick
            test_pool_cancels_pending_serial;
          Alcotest.test_case "cancels pending (parallel)" `Quick
            test_pool_cancels_pending_parallel;
          Alcotest.test_case "job faults stay in the job" `Quick
            test_pool_job_faults_stay_in_job;
          Alcotest.test_case "error identity preserved" `Quick
            test_pool_error_backtrace_preserved;
          Alcotest.test_case "pool-site injection" `Quick test_pool_site_faults;
        ] );
      ( "dag_exec supervision",
        [
          Alcotest.test_case "transient + retry" `Quick test_dag_exec_transient_retry;
          Alcotest.test_case "crash needs snapshot" `Quick
            test_dag_exec_crash_double_applies_without_capture;
          Alcotest.test_case "budget exhausted propagates" `Quick
            test_dag_exec_budget_exhausted_propagates;
        ] );
      ("dtd recovery", [ Alcotest.test_case "snapshot + metrics" `Quick test_dtd_snapshot_recovery ]);
      ( "cholesky recovery",
        [
          Alcotest.test_case "global pivot index" `Quick test_cholesky_global_pivot_index;
          Alcotest.test_case "chaos equivalence" `Quick test_cholesky_chaos_equivalence;
          Alcotest.test_case "pivot escalation recovers" `Quick
            test_cholesky_pivot_escalation_recovers;
          Alcotest.test_case "escalation reaches full map" `Quick
            test_cholesky_escalation_reaches_full_map;
          Alcotest.test_case "true indefiniteness" `Quick test_cholesky_true_indefiniteness;
        ] );
      ( "likelihood robustness",
        [ Alcotest.test_case "clean status" `Quick test_likelihood_robust_clean ] );
      ("replay property", [ qtest prop_faulted_replay_bitwise_identical ]);
    ]
